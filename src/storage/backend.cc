#include "src/storage/backend.h"

#include <cstring>
#include <thread>
#include <utility>

namespace rotind::storage {

bool IsRetryableStorageError(StatusCode code) {
  // kIoError: the read itself failed (transient EIO class).
  // kCorruptHeader: a torn page — the checksum caught bytes from a
  // half-completed write; a re-read may observe the completed write.
  return code == StatusCode::kIoError || code == StatusCode::kCorruptHeader;
}

StatusOr<SeriesHandle> StorageBackend::TryFetch(std::size_t i,
                                                FetchStats* stats) const {
  if (i >= size()) {
    return Status::OutOfRange("object id " + std::to_string(i) +
                              " not in [0, " + std::to_string(size()) + ")");
  }
  SeriesHandle handle = Fetch(i, stats);
  if (!handle.valid()) {
    Status latched = error();
    if (!latched.ok()) return latched;
    return Status::Internal("backend returned an invalid handle");
  }
  return handle;
}

int StorageBackend::label(std::size_t) const { return 0; }

// --------------------------------------------------------------------------
// InMemoryBackend

SeriesHandle InMemoryBackend::Fetch(std::size_t i, FetchStats* stats) const {
  if (stats != nullptr) ++stats->object_fetches;
  return SeriesHandle::Borrowed(flat_->data(i), flat_->length());
}

int InMemoryBackend::label(std::size_t i) const {
  return i < flat_->labels().size() ? flat_->labels()[i] : 0;
}

// --------------------------------------------------------------------------
// SimulatedBackend

SimulatedBackend::SimulatedBackend(const std::vector<Series>& db,
                                   std::size_t page_size_bytes)
    : disk_(page_size_bytes) {
  disk_.StoreAll(db);
  length_ = db.empty() ? 0 : db[0].size();
}

SimulatedBackend::SimulatedBackend(const FlatDataset& flat,
                                   std::size_t page_size_bytes)
    : disk_(page_size_bytes), length_(flat.length()) {
  for (std::size_t i = 0; i < flat.size(); ++i) {
    (void)disk_.Store(flat.Materialize(i));
  }
}

SeriesHandle SimulatedBackend::Fetch(std::size_t i, FetchStats* stats) const {
  const int id = static_cast<int>(i);
  if (stats != nullptr) {
    ++stats->object_fetches;
    const std::uint64_t pages = disk_.PagesSpanned(id);
    stats->page_reads += pages;
    stats->bytes_read += pages * disk_.page_size_bytes();
  }
  // Fetch() (not Peek) so the disk's own cumulative counters advance in
  // lockstep with the per-call stats — parity with the pre-backend code.
  const Series& s = disk_.Fetch(id);
  return SeriesHandle::Borrowed(s.data(), s.size());
}

// --------------------------------------------------------------------------
// FileBackend

FileBackend::FileBackend(std::unique_ptr<IndexFile> file,
                         std::size_t pool_pages, EvictionPolicy eviction,
                         const Tuning& tuning)
    : file_(std::move(file)),
      retry_(tuning.retry),
      fault_schedule_(tuning.faults.enabled()
                          ? std::make_unique<FaultSchedule>(tuning.faults)
                          : nullptr),
      fault_source_(fault_schedule_ != nullptr
                        ? std::make_unique<FaultInjectingSource>(
                              *file_, *fault_schedule_)
                        : nullptr),
      pool_(fault_source_ != nullptr
                ? static_cast<const PageSource&>(*fault_source_)
                : static_cast<const PageSource&>(*file_),
            pool_pages, eviction) {}

StatusOr<std::unique_ptr<FileBackend>> FileBackend::Open(
    const std::string& path, std::size_t pool_pages, EvictionPolicy eviction,
    const Tuning& tuning) {
  StatusOr<std::unique_ptr<IndexFile>> file = IndexFile::Open(path);
  if (!file.ok()) return file.status();
  return std::unique_ptr<FileBackend>(
      new FileBackend(*std::move(file), pool_pages, eviction, tuning));
}

std::unique_ptr<FileBackend> FileBackend::FromIndex(
    std::unique_ptr<IndexFile> file, std::size_t pool_pages,
    EvictionPolicy eviction, const Tuning& tuning) {
  return std::unique_ptr<FileBackend>(
      new FileBackend(std::move(file), pool_pages, eviction, tuning));
}

FaultCounters FileBackend::fault_counters() const {
  return fault_schedule_ != nullptr ? fault_schedule_->counters()
                                    : FaultCounters();
}

StatusOr<BufferPool::Pinned> FileBackend::PinWithRetry(
    std::size_t page, FetchStats* stats) const {
  std::chrono::nanoseconds backoff = retry_.initial_backoff;
  for (int attempt = 1;; ++attempt) {
    BufferPool::PinOutcome outcome;
    StatusOr<BufferPool::Pinned> pinned = pool_.Pin(page, &outcome);
    if (pinned.ok()) {
      if (stats != nullptr) {
        if (outcome.hit) {
          ++stats->pool_hits;
        } else {
          ++stats->page_reads;
        }
        if (outcome.evicted) ++stats->pool_evictions;
        stats->bytes_read += outcome.bytes_read;
        if (attempt > 1) ++stats->faults_absorbed;
      }
      return pinned;
    }
    if (!IsRetryableStorageError(pinned.status().code()) ||
        attempt >= retry_.max_attempts) {
      return pinned;  // permanent, or the retry budget is spent: surface.
    }
    if (stats != nullptr) ++stats->retries;
    if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    backoff = std::chrono::nanoseconds(static_cast<std::int64_t>(
        static_cast<double>(backoff.count()) * retry_.backoff_multiplier));
  }
}

StatusOr<SeriesHandle> FileBackend::TryFetch(std::size_t i,
                                             FetchStats* stats) const {
  if (i >= file_->num_objects()) {
    return Status::OutOfRange("object id " + std::to_string(i) +
                              " not in [0, " +
                              std::to_string(file_->num_objects()) + ")");
  }
  const IndexFile::Extent extent = file_->extent(i);
  const std::size_t page_size = file_->page_size_bytes();
  const std::size_t first = extent.offset / page_size;
  const std::size_t last = (extent.offset + extent.bytes - 1) / page_size;

  std::vector<double> values(extent.bytes / sizeof(double));
  char* dst = reinterpret_cast<char*>(values.data());
  std::uint64_t copied = 0;
  for (std::size_t page = first; page <= last; ++page) {
    StatusOr<BufferPool::Pinned> pinned = PinWithRetry(page, stats);
    if (!pinned.ok()) return pinned.status();
    const std::uint64_t page_start =
        static_cast<std::uint64_t>(page) * page_size;
    const std::uint64_t from =
        page == first ? extent.offset - page_start : 0;
    const std::uint64_t until =
        page == last ? extent.offset + extent.bytes - page_start : page_size;
    std::memcpy(dst + copied, pinned->data() + from, until - from);
    copied += until - from;
  }
  if (stats != nullptr) ++stats->object_fetches;
  return SeriesHandle::TakeOwned(std::move(values));
}

SeriesHandle FileBackend::Fetch(std::size_t i, FetchStats* stats) const {
  StatusOr<SeriesHandle> handle = TryFetch(i, stats);
  if (handle.ok()) return *std::move(handle);
  MutexLock lock(error_mutex_);
  if (error_.ok()) error_ = handle.status();
  return SeriesHandle();
}

int FileBackend::label(std::size_t i) const {
  const std::vector<int>& labels = file_->labels();
  return i < labels.size() ? labels[i] : 0;
}

Status FileBackend::error() const {
  MutexLock lock(error_mutex_);
  return error_;
}

void FileBackend::ClearError() const {
  MutexLock lock(error_mutex_);
  error_ = Status::Ok();
}

// --------------------------------------------------------------------------
// FaultInjectingBackend

FaultInjectingBackend::FaultInjectingBackend(
    std::unique_ptr<StorageBackend> inner, const FaultScheduleSpec& spec)
    : owned_(std::move(inner)), inner_(owned_.get()), schedule_(spec) {}

FaultInjectingBackend::FaultInjectingBackend(const StorageBackend& inner,
                                             const FaultScheduleSpec& spec)
    : inner_(&inner), schedule_(spec) {}

StatusOr<SeriesHandle> FaultInjectingBackend::TryFetch(
    std::size_t i, FetchStats* stats) const {
  const FaultAction action = schedule_.Decide(i);
  switch (action.kind) {
    case FaultKind::kTransientRead:
      return Status::IoError("injected transient read error on object " +
                             std::to_string(i));
    case FaultKind::kTornPage:
      return Status(StatusCode::kCorruptHeader,
                    "injected torn page under object " + std::to_string(i) +
                        ": checksum mismatch");
    case FaultKind::kLatencySpike:
      std::this_thread::sleep_for(action.latency);
      break;
    case FaultKind::kNone:
      break;
  }
  return inner_->TryFetch(i, stats);
}

SeriesHandle FaultInjectingBackend::Fetch(std::size_t i,
                                          FetchStats* stats) const {
  StatusOr<SeriesHandle> handle = TryFetch(i, stats);
  if (handle.ok()) return *std::move(handle);
  MutexLock lock(error_mutex_);
  if (error_.ok()) error_ = handle.status();
  return SeriesHandle();
}

Status FaultInjectingBackend::error() const {
  // Scoped: the inner backend's error_mutex_ shares this rank, so it must
  // not be acquired while ours is held.
  {
    MutexLock lock(error_mutex_);
    if (!error_.ok()) return error_;
  }
  return inner_->error();
}

void FaultInjectingBackend::ClearError() const {
  {
    MutexLock lock(error_mutex_);
    error_ = Status::Ok();
  }
  inner_->ClearError();
}

// --------------------------------------------------------------------------
// OpenBackend

StatusOr<std::unique_ptr<StorageBackend>> OpenBackend(
    const StorageOptions& options, const FlatDataset* in_memory_source) {
  switch (options.backend) {
    case BackendKind::kInMemory:
      if (in_memory_source == nullptr) {
        return Status::InvalidArgument(
            "in-memory backend needs a source dataset");
      }
      return std::unique_ptr<StorageBackend>(
          std::make_unique<InMemoryBackend>(*in_memory_source));
    case BackendKind::kSimulated:
      if (in_memory_source == nullptr) {
        return Status::InvalidArgument(
            "simulated backend needs a source dataset");
      }
      return std::unique_ptr<StorageBackend>(
          std::make_unique<SimulatedBackend>(*in_memory_source,
                                             options.page_size_bytes));
    case BackendKind::kFile: {
      if (options.index_path.empty()) {
        return Status::InvalidArgument(
            "file backend needs EngineOptions storage.index_path");
      }
      FileBackend::Tuning tuning;
      tuning.retry = options.retry;
      tuning.faults = options.faults;
      StatusOr<std::unique_ptr<FileBackend>> backend = FileBackend::Open(
          options.index_path, options.pool_pages, options.eviction, tuning);
      if (!backend.ok()) return backend.status();
      return std::unique_ptr<StorageBackend>(*std::move(backend));
    }
  }
  return Status::InvalidArgument("unknown backend kind");
}

}  // namespace rotind::storage
