#ifndef ROTIND_STORAGE_BUFFER_POOL_H_
#define ROTIND_STORAGE_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/core/status.h"
#include "src/core/sync.h"

namespace rotind::storage {

/// Anything that can produce fixed-size pages by index. IndexFile is the
/// production implementation (pread + checksum verify); tests substitute
/// in-memory and fault-injecting sources.
class PageSource {
 public:
  virtual ~PageSource() = default;
  virtual std::size_t page_size_bytes() const = 0;
  virtual std::size_t num_pages() const = 0;
  /// Fills `out` (page_size_bytes() bytes) with page `page`.
  [[nodiscard]] virtual Status ReadPage(std::size_t page, char* out) const = 0;
};

/// Which frame to sacrifice when the pool is full and a new page faults in.
enum class EvictionPolicy {
  kLru,    ///< Evict the unpinned frame touched least recently.
  kClock,  ///< Second-chance sweep: clear reference bits until one is cold.
};

/// Cumulative pool activity since construction. Snapshot via counters().
struct PoolCounters {
  std::uint64_t hits = 0;        ///< Pins served from a resident frame.
  std::uint64_t misses = 0;      ///< Pins that had to read from the source.
  std::uint64_t evictions = 0;   ///< Occupied frames recycled for a miss.
  std::uint64_t bytes_read = 0;  ///< Bytes fetched from the source.
  std::uint64_t failed_reads = 0;  ///< Source reads that returned non-OK.
};

/// A fixed-capacity page cache with pin counts.
///
/// Frames are preallocated at construction (capacity * page_size bytes), so
/// a frame's data pointer is stable for the pool's lifetime and a Pinned
/// handle can be held across other Pin calls. A pinned frame is never
/// evicted; when every frame is pinned and a new page faults, Pin fails
/// with kInvalidArgument rather than exceed capacity.
///
/// Thread safety: all operations are serialized on one internal mutex
/// (including the source read on a miss — simple and correct; the scale
/// this library targets does not need lock-free page faults). Safe for the
/// deterministic SearchBatch path: concurrent pins of the same page share
/// the frame, and counters are totals, not per-thread. The mutex is a
/// rotind::Mutex at LockRank::kBufferPool, and every mutable field is
/// ROTIND_GUARDED_BY it — Clang's thread-safety analysis proves the
/// discipline at compile time (see src/core/sync.h).
class BufferPool {
 public:
  /// `source` must outlive the pool. `capacity_pages` is clamped to >= 1.
  BufferPool(const PageSource& source, std::size_t capacity_pages,
             EvictionPolicy policy);
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Per-call outcome, for callers that attribute I/O to a query stage.
  struct PinOutcome {
    bool hit = false;
    bool evicted = false;
    std::uint64_t bytes_read = 0;
  };

  /// RAII pin: the page stays resident while any Pinned for it lives.
  class Pinned {
   public:
    Pinned() = default;
    Pinned(Pinned&& other) noexcept { *this = static_cast<Pinned&&>(other); }
    Pinned& operator=(Pinned&& other) noexcept;
    Pinned(const Pinned&) = delete;
    Pinned& operator=(const Pinned&) = delete;
    ~Pinned() { Release(); }

    bool valid() const { return pool_ != nullptr; }
    /// Page bytes; valid while this handle lives.
    const char* data() const { return data_; }
    std::size_t page() const { return page_; }
    /// Unpins early (idempotent).
    void Release();

   private:
    friend class BufferPool;
    Pinned(BufferPool* pool, std::size_t frame, const char* data,
           std::size_t page)
        : pool_(pool), frame_(frame), data_(data), page_(page) {}
    BufferPool* pool_ = nullptr;
    std::size_t frame_ = 0;
    const char* data_ = nullptr;
    std::size_t page_ = 0;
  };

  /// Pins `page`, faulting it in from the source if absent. Fails with
  /// kOutOfRange for a page the source does not have, kInvalidArgument
  /// when every frame is pinned (capacity would be exceeded), or the
  /// source's own error when the read fails.
  [[nodiscard]] StatusOr<Pinned> Pin(std::size_t page,
                                     PinOutcome* outcome = nullptr)
      ROTIND_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t capacity_pages() const { return capacity_; }
  [[nodiscard]] std::size_t page_size_bytes() const { return page_size_; }
  [[nodiscard]] EvictionPolicy policy() const { return policy_; }
  /// Frames currently holding a page (pinned or not).
  [[nodiscard]] std::size_t resident_pages() const ROTIND_EXCLUDES(mutex_);
  /// Frames with at least one live pin. Never exceeds capacity_pages().
  [[nodiscard]] std::size_t pinned_pages() const ROTIND_EXCLUDES(mutex_);
  [[nodiscard]] PoolCounters counters() const ROTIND_EXCLUDES(mutex_);

 private:
  struct Frame {
    std::vector<char> data;
    std::size_t page = 0;
    bool occupied = false;
    std::uint32_t pins = 0;
    std::uint64_t last_use = 0;  ///< LRU recency stamp.
    bool referenced = false;     ///< Clock second-chance bit.
  };

  void Unpin(std::size_t frame) ROTIND_EXCLUDES(mutex_);
  /// Picks the frame to receive a faulted page: a free frame if any,
  /// otherwise an unpinned victim per the policy.
  [[nodiscard]] StatusOr<std::size_t> PickFrameLocked()
      ROTIND_REQUIRES(mutex_);

  const PageSource& source_;
  const std::size_t page_size_;
  const EvictionPolicy policy_;
  /// Fixed at construction; kept outside the guard so capacity_pages()
  /// stays lock-free (frames_.size() never changes but IS guarded).
  const std::size_t capacity_;
  mutable Mutex mutex_{LockRank::kBufferPool};
  std::vector<Frame> frames_ ROTIND_GUARDED_BY(mutex_);
  std::unordered_map<std::size_t, std::size_t> page_to_frame_
      ROTIND_GUARDED_BY(mutex_);
  std::uint64_t tick_ ROTIND_GUARDED_BY(mutex_) = 0;  ///< LRU use counter.
  std::size_t hand_ ROTIND_GUARDED_BY(mutex_) = 0;  ///< Clock sweep position.
  PoolCounters counters_ ROTIND_GUARDED_BY(mutex_);
};

}  // namespace rotind::storage

#endif  // ROTIND_STORAGE_BUFFER_POOL_H_
