#include "src/storage/simulated_disk.h"

#include <string>
#include <utility>

namespace rotind::storage {
namespace {

const Series& EmptySeries() {
  static const Series empty;
  return empty;
}

}  // namespace

SimulatedDisk::SimulatedDisk(std::size_t page_size_bytes)
    : page_size_bytes_(page_size_bytes == 0 ? 4096 : page_size_bytes) {}

SimulatedDisk::SimulatedDisk(SimulatedDisk&& other) noexcept
    : page_size_bytes_(other.page_size_bytes_),
      objects_(std::move(other.objects_)),
      offsets_(std::move(other.offsets_)),
      next_offset_(other.next_offset_),
      object_fetches_(other.object_fetches_.load(std::memory_order_relaxed)),
      page_reads_(other.page_reads_.load(std::memory_order_relaxed)) {}

SimulatedDisk& SimulatedDisk::operator=(SimulatedDisk&& other) noexcept {
  if (this != &other) {
    page_size_bytes_ = other.page_size_bytes_;
    objects_ = std::move(other.objects_);
    offsets_ = std::move(other.offsets_);
    next_offset_ = other.next_offset_;
    object_fetches_.store(
        other.object_fetches_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    page_reads_.store(other.page_reads_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }
  return *this;
}

int SimulatedDisk::Store(const Series& s) {
  objects_.push_back(s);
  offsets_.push_back(next_offset_);
  next_offset_ += s.size() * sizeof(double);
  return static_cast<int>(objects_.size()) - 1;
}

void SimulatedDisk::StoreAll(const std::vector<Series>& db) {
  objects_.reserve(objects_.size() + db.size());
  offsets_.reserve(offsets_.size() + db.size());
  for (const Series& s : db) (void)Store(s);
}

std::uint64_t SimulatedDisk::PagesSpanned(int id) const {
  if (!Contains(id)) return 0;
  const std::size_t i = static_cast<std::size_t>(id);
  const std::uint64_t bytes = objects_[i].size() * sizeof(double);
  if (bytes == 0) return 0;
  // Offset-aware: count every page the byte range touches, from the
  // page-aligned start. A series that straddles a boundary reads one page
  // more than ceil(bytes / page_size) alone would suggest.
  const std::uint64_t first = offsets_[i] / page_size_bytes_;
  const std::uint64_t last = (offsets_[i] + bytes - 1) / page_size_bytes_;
  return last - first + 1;
}

StatusOr<const Series*> SimulatedDisk::TryFetch(int id) const {
  if (!Contains(id)) {
    return Status::OutOfRange("object id " + std::to_string(id) +
                              " not in [0, " + std::to_string(objects_.size()) +
                              ")");
  }
  const Series& s = objects_[static_cast<std::size_t>(id)];
  object_fetches_.fetch_add(1, std::memory_order_relaxed);
  page_reads_.fetch_add(PagesSpanned(id), std::memory_order_relaxed);
  return &s;
}

StatusOr<const Series*> SimulatedDisk::TryPeek(int id) const {
  if (!Contains(id)) {
    return Status::OutOfRange("object id " + std::to_string(id) +
                              " not in [0, " + std::to_string(objects_.size()) +
                              ")");
  }
  return &objects_[static_cast<std::size_t>(id)];
}

const Series& SimulatedDisk::Fetch(int id) const {
  StatusOr<const Series*> s = TryFetch(id);
  return s.ok() ? **s : EmptySeries();
}

const Series& SimulatedDisk::Peek(int id) const {
  StatusOr<const Series*> s = TryPeek(id);
  return s.ok() ? **s : EmptySeries();
}

double SimulatedDisk::FetchFraction() const {
  if (objects_.empty()) return 0.0;
  return static_cast<double>(object_fetches()) /
         static_cast<double>(objects_.size());
}

void SimulatedDisk::ResetCounters() {
  object_fetches_.store(0, std::memory_order_relaxed);
  page_reads_.store(0, std::memory_order_relaxed);
}

}  // namespace rotind::storage
