#ifndef ROTIND_STORAGE_FAULT_INJECTION_H_
#define ROTIND_STORAGE_FAULT_INJECTION_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "src/core/random.h"
#include "src/core/status.h"
#include "src/core/sync.h"
#include "src/storage/buffer_pool.h"

namespace rotind::storage {

/// The storage fault taxonomy the robustness layer defends against.
///
///   kTransientRead  the read syscall fails (EIO-alike); an immediate
///                   re-read may succeed. Surfaces as kIoError.
///   kTornPage       the read "succeeds" but the page bytes are from a
///                   half-completed write; the per-page checksum catches it.
///                   Surfaces as kCorruptHeader (the same code IndexFile
///                   reports for a real checksum mismatch).
///   kLatencySpike   the read succeeds but takes pathologically long —
///                   the fault that shapes p99, not correctness.
enum class FaultKind { kNone, kTransientRead, kTornPage, kLatencySpike };

/// One injection decision: what to do to the current read.
struct FaultAction {
  FaultKind kind = FaultKind::kNone;
  std::chrono::nanoseconds latency{0};  ///< kLatencySpike sleep.
};

/// Cumulative injected-fault accounting, snapshot via counters().
struct FaultCounters {
  std::uint64_t transient_errors = 0;
  std::uint64_t torn_pages = 0;
  std::uint64_t latency_spikes = 0;

  [[nodiscard]] std::uint64_t total() const {
    return transient_errors + torn_pages + latency_spikes;
  }
};

/// Seeded, reproducible fault plan. All probabilities default to zero, so a
/// default spec injects nothing; the same seed and probabilities replay the
/// same fault sequence for a given read order.
struct FaultScheduleSpec {
  std::uint64_t seed = 0x5eed0f417ULL;
  /// Probability a read starts a transient-error burst.
  double transient_read_prob = 0.0;
  /// Consecutive failed attempts per transient burst. Bursts strictly
  /// shorter than the retry policy's attempt budget are absorbed; longer
  /// ones surface as typed kIoError.
  int transient_burst = 1;
  /// Probability a read returns a torn (checksum-mismatch) page. Torn
  /// reads are single-shot: the re-read sees the completed write.
  double torn_page_prob = 0.0;
  /// Probability a read sleeps for `latency_spike` before succeeding.
  double latency_spike_prob = 0.0;
  std::chrono::nanoseconds latency_spike{2'000'000};  // 2 ms
  /// When >= 0, every read of this key fails permanently (kIoError) —
  /// the "disk went bad" case retries must NOT absorb.
  std::int64_t permanent_fail_key = -1;

  [[nodiscard]] bool enabled() const {
    return transient_read_prob > 0.0 || torn_page_prob > 0.0 ||
           latency_spike_prob > 0.0 || permanent_fail_key >= 0;
  }
};

/// Thread-safe realization of a FaultScheduleSpec. `Decide(key)` draws the
/// next action for a read of `key` (a page id at the PageSource layer, an
/// object id at the StorageBackend layer) and advances burst state.
class FaultSchedule {
 public:
  explicit FaultSchedule(const FaultScheduleSpec& spec);

  FaultAction Decide(std::uint64_t key) ROTIND_EXCLUDES(mutex_);
  [[nodiscard]] FaultCounters counters() const ROTIND_EXCLUDES(mutex_);
  [[nodiscard]] const FaultScheduleSpec& spec() const { return spec_; }

 private:
  const FaultScheduleSpec spec_;
  /// kFaultSchedule rank: Decide is reached from inside the BufferPool's
  /// miss path (pool mutex held), so this mutex must rank strictly below
  /// LockRank::kBufferPool.
  mutable Mutex mutex_{LockRank::kFaultSchedule};
  Rng rng_ ROTIND_GUARDED_BY(mutex_);
  /// Remaining failures in an in-progress transient burst, per key.
  std::unordered_map<std::uint64_t, int> burst_remaining_
      ROTIND_GUARDED_BY(mutex_);
  FaultCounters counters_ ROTIND_GUARDED_BY(mutex_);
};

/// PageSource decorator: sits *under* the BufferPool so injected faults
/// exercise the exact miss path real disk errors take (pool -> source ->
/// Status), where FileBackend's retry-with-backoff can absorb them.
/// `inner` and `schedule` must outlive the source.
class FaultInjectingSource final : public PageSource {
 public:
  FaultInjectingSource(const PageSource& inner, FaultSchedule& schedule)
      : inner_(inner), schedule_(schedule) {}

  std::size_t page_size_bytes() const override {
    return inner_.page_size_bytes();
  }
  std::size_t num_pages() const override { return inner_.num_pages(); }
  [[nodiscard]] Status ReadPage(std::size_t page, char* out) const override;

 private:
  const PageSource& inner_;
  FaultSchedule& schedule_;
};

}  // namespace rotind::storage

#endif  // ROTIND_STORAGE_FAULT_INJECTION_H_
