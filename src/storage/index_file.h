#ifndef ROTIND_STORAGE_INDEX_FILE_H_
#define ROTIND_STORAGE_INDEX_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/series.h"
#include "src/core/status.h"
#include "src/storage/buffer_pool.h"

namespace rotind::storage {

/// Paged on-disk index file ("RIDX" container, versions 1 and 2).
///
/// Layout (little-endian, all checksums 64-bit FNV-1a):
///
///   +--------------------------------------------------------------+
///   | header (64 bytes, fixed)                                     |
///   |   magic "RIDX" | version u32 | page_size u64 | count u64     |
///   |   length u64 | sig_dims u64 | paa_dims u64 | flags u64       |
///   |   header checksum u64 (over the 56 bytes before it)          |
///   +--------------------------------------------------------------+
///   | v2 only: extension header (64 bytes, fixed)                  |
///   |   ri_dims u64 | 48 reserved bytes (must be zero)             |
///   |   extension checksum u64 (over the 56 bytes before it)       |
///   +--------------------------------------------------------------+
///   | catalog: count x {offset u64, bytes u64}    + checksum u64   |
///   | page checksums: data_pages x u64            + checksum u64   |
///   | FFT magnitude signatures: count*sig_dims f64 + checksum u64  |
///   | PAA summaries: count*paa_dims f64           + checksum u64   |
///   | v2, flags bit 1: rotation-invariant pooled signatures,       |
///   |   count*ri_dims f64                         + checksum u64   |
///   | labels (flags bit 0): count x i32           + checksum u64   |
///   |   ... zero padding to the next page_size boundary ...        |
///   +--------------------------------------------------------------+
///   | data section: data_pages pages of page_size bytes each;      |
///   | series i occupies bytes [catalog[i].offset,                  |
///   | catalog[i].offset + catalog[i].bytes) of the section          |
///   +--------------------------------------------------------------+
///
/// VERSIONING RULE: the writer emits the OLDEST version that can represent
/// the payload — version 1 whenever no rotation-invariant signature section
/// is requested (ri_dims == 0), byte-identical to files written before v2
/// existed — and the reader accepts both versions. Flag bits are
/// version-gated: bit 1 (RI signatures) is "unknown flag bits set"
/// corruption in a version-1 header, so a v1 reader's rejection behaviour
/// is preserved exactly.
///
/// Everything above the data section is the RESIDENT region: it is read,
/// checksum-verified, and held in memory at open time (signatures and
/// summaries must be scanned for every query, so paging them would defeat
/// the lower-bound cascade). The data section is read page-at-a-time
/// through a BufferPool, each page verified against its resident checksum.
///
/// Error taxonomy mirrors the dataset container (src/io/serialize.h):
///   kBadMagic         not a RIDX file
///   kVersionMismatch  written by an incompatible version
///   kTruncated        file ends before a section its header promises
///   kCorruptHeader    checksum mismatch or internally absurd fields
///   kIoError          pread/write failure on an otherwise valid file

inline constexpr char kIndexMagic[4] = {'R', 'I', 'D', 'X'};
/// Newest version this build writes/accepts; files carry 1 or 2.
inline constexpr std::uint32_t kIndexVersion = 2;
inline constexpr std::uint32_t kIndexVersionV1 = 1;
inline constexpr std::size_t kIndexHeaderBytes = 64;
/// Version-2 extension header size; a v2 resident region starts at
/// kIndexHeaderBytes + kIndexExtHeaderBytes.
inline constexpr std::size_t kIndexExtHeaderBytes = 64;
inline constexpr std::uint64_t kIndexFlagHasLabels = 1;
/// Version 2: the resident rotation-invariant signature section is present.
/// Unknown (corrupt) in a version-1 header.
inline constexpr std::uint64_t kIndexFlagHasRiSig = 2;
/// Accepted page sizes: anything in [64 bytes, 64 MiB]. The default
/// matches SimulatedDisk's 4096-byte page.
inline constexpr std::uint64_t kMinPageSize = 64;
inline constexpr std::uint64_t kMaxPageSize = 64ull << 20;

/// Everything the writer needs besides the raw series: signature matrices
/// are precomputed by the caller (src/index/index_io computes them via the
/// fourier/paa kernels — storage itself stays below those layers).
struct IndexBuildData {
  std::size_t sig_dims = 0;        ///< Columns of `signatures` (0 = none).
  std::vector<double> signatures;  ///< count x sig_dims, row-major.
  std::size_t paa_dims = 0;        ///< Columns of `paa` (0 = none).
  std::vector<double> paa;         ///< count x paa_dims, row-major.
  /// Columns of `ri_signatures` (0 = none). Any non-zero value upgrades the
  /// written container to version 2; zero keeps it bit-identical to v1.
  std::size_t ri_dims = 0;
  std::vector<double> ri_signatures;  ///< count x ri_dims, row-major.
  std::vector<int> labels;            ///< Optional; empty or count entries.
};

/// Writes `db` plus its signature sections to `path` in the RIDX format.
/// Fails with kInvalidArgument on shape mismatches (ragged matrices, bad
/// page size) and kIoError on write failure.
[[nodiscard]] Status WriteIndexFile(const Dataset& db,
                                    const IndexBuildData& extras,
                                    std::size_t page_size_bytes,
                                    const std::string& path);

/// An opened RIDX file: resident sections in memory, data section readable
/// page-at-a-time. Implements PageSource so a BufferPool can cache pages.
///
/// Thread safety: all accessors and ReadPage are const and safe to call
/// concurrently (file mode uses pread, which carries no shared cursor).
class IndexFile final : public PageSource {
 public:
  /// Opens `path`, reading and verifying the resident region. The file
  /// descriptor stays open for the lifetime of the IndexFile.
  [[nodiscard]] static StatusOr<std::unique_ptr<IndexFile>> Open(
      const std::string& path);

  /// Parses an in-memory image. This is the fuzzing entry point
  /// (tools/rotind_fuzz_load.cc): any byte string must map to a Status or
  /// a usable IndexFile, never a crash.
  [[nodiscard]] static StatusOr<std::unique_ptr<IndexFile>> FromMemory(
      std::string bytes);

  ~IndexFile() override;
  IndexFile(const IndexFile&) = delete;
  IndexFile& operator=(const IndexFile&) = delete;

  std::size_t num_objects() const { return count_; }
  std::size_t series_length() const { return length_; }
  std::size_t sig_dims() const { return sig_dims_; }
  std::size_t paa_dims() const { return paa_dims_; }
  /// Columns of the rotation-invariant signature matrix; 0 for v1 files and
  /// v2 files written without the section.
  std::size_t ri_dims() const { return ri_dims_; }
  bool has_labels() const { return !labels_.empty(); }

  /// FFT magnitude signatures, count x sig_dims row-major (empty when the
  /// file was written without them). Resident; no page I/O.
  const std::vector<double>& spectral_signatures() const { return sigs_; }
  /// PAA summaries, count x paa_dims row-major.
  const std::vector<double>& paa_summaries() const { return paa_; }
  /// Rotation-invariant pooled signatures (fourier VecSignature rows),
  /// count x ri_dims row-major; empty unless the file carries the v2
  /// section. Resident; no page I/O.
  const std::vector<double>& ri_signatures() const { return ri_sigs_; }
  /// Class labels (empty when the file was written without them).
  const std::vector<int>& labels() const { return labels_; }

  /// Byte extent of object `i` within the data section.
  struct Extent {
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
  };
  Extent extent(std::size_t i) const { return catalog_[i]; }

  // PageSource:
  std::size_t page_size_bytes() const override { return page_size_; }
  std::size_t num_pages() const override { return data_pages_; }
  [[nodiscard]] Status ReadPage(std::size_t page, char* out) const override;

 private:
  IndexFile() = default;

  /// Parses header + resident region out of `resident` (at least the
  /// resident byte count long, or the whole file for memory images).
  /// `file_size` is the total container size for truncation checks.
  [[nodiscard]] static StatusOr<std::unique_ptr<IndexFile>> ParseResident(
      const std::string& resident, std::uint64_t file_size);

  std::size_t count_ = 0;
  std::size_t length_ = 0;
  std::size_t page_size_ = 0;
  std::size_t data_pages_ = 0;
  std::uint64_t data_offset_ = 0;  ///< Byte offset of the data section.
  std::vector<Extent> catalog_;
  std::vector<std::uint64_t> page_checksums_;
  std::size_t sig_dims_ = 0;
  std::size_t paa_dims_ = 0;
  std::size_t ri_dims_ = 0;
  std::vector<double> sigs_;
  std::vector<double> paa_;
  std::vector<double> ri_sigs_;
  std::vector<int> labels_;

  int fd_ = -1;              ///< File mode: descriptor for pread.
  std::string path_;         ///< File mode: for error messages.
  std::string memory_;       ///< Memory mode: the whole image.
};

}  // namespace rotind::storage

#endif  // ROTIND_STORAGE_INDEX_FILE_H_
