#include "src/core/random.h"

#include <cmath>

namespace rotind {
namespace {

std::uint64_t SplitMix64(std::uint64_t* x) {
  std::uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0,1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586476925286766559;
  cached_gaussian_ = mag * std::sin(two_pi * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(two_pi * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

}  // namespace rotind
