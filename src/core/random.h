#ifndef ROTIND_CORE_RANDOM_H_
#define ROTIND_CORE_RANDOM_H_

#include <cstdint>

namespace rotind {

/// Deterministic, seedable PRNG (xoshiro256**, seeded via splitmix64).
/// Every generator, dataset, and bench in the library takes an explicit seed
/// so that experiments are reproducible bit-for-bit across runs and machines
/// (std::mt19937 distributions are not portable across standard libraries).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Standard normal via Box-Muller (cached pair).
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

 private:
  std::uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace rotind

#endif  // ROTIND_CORE_RANDOM_H_
