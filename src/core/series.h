#ifndef ROTIND_CORE_SERIES_H_
#define ROTIND_CORE_SERIES_H_

#include <cstddef>
#include <string>
#include <vector>

namespace rotind {

/// A univariate time series. Shapes enter the library as centroid-distance
/// profiles, star light curves as phase-folded brightness curves; both are
/// plain real-valued series whose circular shifts correspond to rotations
/// (shapes) or phase offsets (light curves).
using Series = std::vector<double>;

/// A labelled collection of series, all of the same length. This is the
/// in-memory "database" type used by scans, classification, and indexing.
struct Dataset {
  std::vector<Series> items;
  std::vector<int> labels;            ///< Optional; empty when unlabelled.
  std::vector<std::string> names;     ///< Optional per-item names.

  std::size_t size() const { return items.size(); }
  bool empty() const { return items.empty(); }
  /// Length of the series (0 when empty). All items must share this length.
  std::size_t length() const { return items.empty() ? 0 : items[0].size(); }
};

/// Arithmetic mean of `s`. Returns 0 for an empty series.
double Mean(const Series& s);

/// Population standard deviation of `s`. Returns 0 for an empty series.
double StdDev(const Series& s);

/// Z-normalises `s` in place: zero mean, unit variance. Series whose standard
/// deviation is below `kFlatEpsilon` are shifted to zero mean only (a flat
/// series carries no shape information; dividing by ~0 would explode noise).
void ZNormalize(Series* s);

/// Returns a z-normalised copy of `s`.
Series ZNormalized(const Series& s);

/// Standard deviations below this are treated as "flat" by ZNormalize.
inline constexpr double kFlatEpsilon = 1e-12;

/// Returns `s` circularly shifted left by `shift` positions:
/// result[i] = s[(i + shift) mod n]. Shift may be any integer; negative
/// shifts rotate right.
Series RotateLeft(const Series& s, long shift);

/// Returns `s` reversed. Together with rotation this generates the mirror
/// (enantiomorphic) matches discussed in the paper's Section 3.
Series Reversed(const Series& s);

/// Returns `s` concatenated with itself. Rotations of `s` are then the
/// contiguous windows doubled[j .. j+n); this is the zero-copy backing store
/// used by rotation sets and wedge trees.
Series Doubled(const Series& s);

/// Linearly resamples `s` (interpreted as samples of a periodic function at
/// uniform spacing) to `m` points. Used to bring profiles of different
/// contour lengths to a common dimensionality.
Series ResampleLinear(const Series& s, std::size_t m);

}  // namespace rotind

#endif  // ROTIND_CORE_SERIES_H_
