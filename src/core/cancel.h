#ifndef ROTIND_CORE_CANCEL_H_
#define ROTIND_CORE_CANCEL_H_

#include <atomic>
#include <chrono>
#include <string>

#include "src/core/status.h"

namespace rotind {

/// Cooperative cancellation token for long-running query work.
///
/// A token carries (a) an optional absolute deadline, (b) a local cancel
/// flag, and (c) an optional pointer to an external kill-switch (a shared
/// atomic owned by e.g. a server's shutdown path, so one flag can cancel
/// every in-flight query at once). Work that honors the token polls
/// `Check()` at natural stage boundaries; a fired token maps to a *typed*
/// Status — kDeadlineExceeded or kCancelled — never to a partial result.
///
/// Polling cost: when a deadline is set, every Check() samples the steady
/// clock (~tens of ns). This is deliberate — an already-expired deadline
/// must fire at the *first* boundary after expiry so deadline semantics are
/// deterministic under test, and the cascade's per-candidate work dwarfs a
/// clock read. Tokens are cheap to copy; copies share the external
/// kill-switch but not the local flag.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// A token that never fires (the default for non-server call sites).
  CancelToken() = default;

  /// A token that fires once `Clock::now() >= deadline`.
  [[nodiscard]] static CancelToken WithDeadline(Clock::time_point deadline) {
    CancelToken token;
    token.deadline_ = deadline;
    token.has_deadline_ = true;
    return token;
  }

  /// A token that fires `timeout` from now. Non-positive timeouts produce a
  /// token that is already expired, which is a legitimate way to probe the
  /// first stage boundary.
  [[nodiscard]] static CancelToken WithTimeout(
      std::chrono::nanoseconds timeout) {
    return WithDeadline(Clock::now() + timeout);
  }

  /// Attaches an external kill-switch. The pointee must outlive every
  /// Check() on this token and its copies; `true` means "cancel now".
  void AttachKillSwitch(const std::atomic<bool>* kill_switch) {
    kill_switch_ = kill_switch;
  }

  /// Requests local cancellation. Affects this token only (copies made
  /// before the call are independent); for fleet-wide cancellation use the
  /// kill-switch.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool has_deadline() const { return has_deadline_; }
  [[nodiscard]] Clock::time_point deadline() const { return deadline_; }

  /// True iff the token has fired (deadline passed, local Cancel(), or
  /// kill-switch set). Never true for a default token.
  [[nodiscard]] bool Fired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (kill_switch_ != nullptr &&
        kill_switch_->load(std::memory_order_relaxed)) {
      return true;
    }
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// OK while the token has not fired; otherwise the typed failure the
  /// caller must return verbatim. Deadline expiry wins over cancellation
  /// when both hold, so a drain-deadline kill reports honestly as
  /// kDeadlineExceeded from the query's perspective.
  [[nodiscard]] Status Check() const {
    if (has_deadline_ && Clock::now() >= deadline_) {
      return Status::DeadlineExceeded("query deadline expired");
    }
    if (cancelled_.load(std::memory_order_relaxed)) {
      return Status::Cancelled("query cancelled");
    }
    if (kill_switch_ != nullptr &&
        kill_switch_->load(std::memory_order_relaxed)) {
      return Status::Cancelled("server kill-switch set");
    }
    return Status::Ok();
  }

  CancelToken(const CancelToken& other)
      : deadline_(other.deadline_),
        has_deadline_(other.has_deadline_),
        kill_switch_(other.kill_switch_),
        cancelled_(other.cancelled_.load(std::memory_order_relaxed)) {}
  CancelToken& operator=(const CancelToken& other) {
    deadline_ = other.deadline_;
    has_deadline_ = other.has_deadline_;
    kill_switch_ = other.kill_switch_;
    cancelled_.store(other.cancelled_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    return *this;
  }

 private:
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  const std::atomic<bool>* kill_switch_ = nullptr;
  std::atomic<bool> cancelled_{false};
};

}  // namespace rotind

#endif  // ROTIND_CORE_CANCEL_H_
