#ifndef ROTIND_CORE_STEP_COUNTER_H_
#define ROTIND_CORE_STEP_COUNTER_H_

#include <cstdint>

namespace rotind {

/// Implementation-free cost accounting, following the paper's Section 5.3:
/// one "step" is one real-value subtraction inside a distance or lower-bound
/// kernel ("num_steps" in the paper's Tables 1 and 5). Counting subtractions
/// rather than wall-clock time removes implementation bias when comparing
/// rival algorithms.
///
/// Every kernel takes a nullable `StepCounter*`; passing nullptr disables
/// accounting with negligible overhead.
struct StepCounter {
  /// Real-value subtractions performed by distance/lower-bound kernels.
  std::uint64_t steps = 0;
  /// Steps charged to one-off setup work (wedge construction, FFTs of the
  /// query). Reported separately so benches can show amortisation, but
  /// included in totals exactly as the paper does.
  std::uint64_t setup_steps = 0;
  /// Number of lower-bound evaluations started.
  std::uint64_t lower_bound_evals = 0;
  /// Number of full (exact) distance evaluations started.
  std::uint64_t full_evals = 0;
  /// Number of evaluations cut short by early abandoning.
  std::uint64_t early_abandons = 0;

  void Reset() { *this = StepCounter{}; }

  std::uint64_t total_steps() const { return steps + setup_steps; }

  StepCounter& operator+=(const StepCounter& o) {
    steps += o.steps;
    setup_steps += o.setup_steps;
    lower_bound_evals += o.lower_bound_evals;
    full_evals += o.full_evals;
    early_abandons += o.early_abandons;
    return *this;
  }
};

/// Adds `n` kernel steps to `c` if non-null.
inline void AddSteps(StepCounter* c, std::uint64_t n) {
  if (c != nullptr) c->steps += n;
}

/// Adds `n` setup steps to `c` if non-null.
inline void AddSetupSteps(StepCounter* c, std::uint64_t n) {
  if (c != nullptr) c->setup_steps += n;
}

}  // namespace rotind

#endif  // ROTIND_CORE_STEP_COUNTER_H_
