#ifndef ROTIND_CORE_SYNC_H_
#define ROTIND_CORE_SYNC_H_

/// Annotated synchronization primitives: the static concurrency-safety
/// layer.
///
/// Every mutex in src/ is a `rotind::Mutex`, every scoped acquisition a
/// `rotind::MutexLock`, every wait a `rotind::CondVar` — raw std::mutex /
/// std::lock_guard / std::condition_variable are banned in src/ outside
/// this header (enforced by rotind_lint's raw-sync-primitive rule). The
/// wrappers carry Clang thread-safety capability attributes, so a Clang
/// build with `-Wthread-safety -Wthread-safety-beta` (promoted to errors
/// in CI) *proves* the lock discipline: a `ROTIND_GUARDED_BY(mutex_)`
/// field touched without the mutex, a `ROTIND_REQUIRES(mutex_)` helper
/// called unlocked, or a lock leaked out of scope is a compile error, not
/// an interleaving TSan may or may not catch. On non-Clang compilers the
/// attribute macros expand to nothing and the wrappers are zero-overhead
/// shims over the std primitives.
///
/// Lock-order hierarchy (deadlock freedom by construction): every Mutex
/// has a `LockRank`; a thread may acquire a mutex only while holding
/// nothing of equal or lower rank — i.e. locks are taken in strictly
/// DECREASING rank order. The ranks mirror the call graph's nesting
/// (outermost first):
///
///   kServeQueue (8)    QueryServer admission/drain mutex
///     > kServeStats (7)    ServerStats accounting mutex
///     > kEngineGen (6)     QueryServer generation/engine pointer (swapped
///                          under the queue mutex during reload, read by
///                          workers per dequeued item)
///     > kShardView (5)     ShardedIndex manifest/shard-set/snapshot cache
///     > kDeltaSegment (4)  DeltaSegment rows/tombstones/epoch (snapshot
///                          rebuilds read it under kShardView)
///     > kBackendError (3)  FileBackend/FaultInjectingBackend latched error
///     > kBufferPool (2)    BufferPool frame-table mutex
///     > kFaultSchedule (1) FaultSchedule burst/rng state (reached from a
///                          pool miss through FaultInjectingSource)
///     > kLeaf (0)          terminal: acquire nothing while holding one
///
/// The hierarchy is asserted at runtime in contract-enabled builds
/// (sanitizer CI jobs, -DROTIND_CONTRACTS=ON) via a thread-local held-rank
/// stack; ordinary Release builds compile the check out entirely.
/// DESIGN.md documents the full thread-capability map.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <vector>

#include "src/core/contracts.h"

// Clang thread-safety attribute shims. See
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for semantics.
#if defined(__clang__)
#define ROTIND_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define ROTIND_THREAD_ANNOTATION__(x)
#endif

/// Declares a type to be a capability (lockable resource).
#define ROTIND_CAPABILITY(x) ROTIND_THREAD_ANNOTATION__(capability(x))
/// Declares an RAII type that acquires on construction, releases on
/// destruction.
#define ROTIND_SCOPED_CAPABILITY ROTIND_THREAD_ANNOTATION__(scoped_lockable)
/// Field may only be read/written while holding `x`.
#define ROTIND_GUARDED_BY(x) ROTIND_THREAD_ANNOTATION__(guarded_by(x))
/// Pointer field whose POINTEE may only be accessed while holding `x`.
#define ROTIND_PT_GUARDED_BY(x) ROTIND_THREAD_ANNOTATION__(pt_guarded_by(x))
/// Function body runs with the listed capabilities already held.
#define ROTIND_REQUIRES(...) \
  ROTIND_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
/// Function acquires the listed capabilities and does not release them.
#define ROTIND_ACQUIRE(...) \
  ROTIND_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
/// Function releases the listed capabilities.
#define ROTIND_RELEASE(...) \
  ROTIND_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
/// Function tries to acquire; returns `b` on success.
#define ROTIND_TRY_ACQUIRE(b, ...) \
  ROTIND_THREAD_ANNOTATION__(try_acquire_capability(b, __VA_ARGS__))
/// Caller must NOT hold the listed capabilities (self-deadlock guard).
#define ROTIND_EXCLUDES(...) \
  ROTIND_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
/// Asserts (to the analysis) that the capability is held here.
#define ROTIND_ASSERT_CAPABILITY(x) \
  ROTIND_THREAD_ANNOTATION__(assert_capability(x))
/// Function returns a reference to the named capability.
#define ROTIND_RETURN_CAPABILITY(x) \
  ROTIND_THREAD_ANNOTATION__(lock_returned(x))
/// Escape hatch: body is not analyzed. Use only with a written reason.
#define ROTIND_NO_THREAD_SAFETY_ANALYSIS \
  ROTIND_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace rotind {

/// Position in the lock-order hierarchy; see the header comment. A mutex
/// may be acquired only while every held mutex has a strictly GREATER
/// rank. kLeaf is the default and the terminal rank: a thread holding a
/// kLeaf mutex must acquire nothing further.
enum class LockRank : int {
  kLeaf = 0,
  kFaultSchedule = 1,
  kBufferPool = 2,
  kBackendError = 3,
  kDeltaSegment = 4,
  kShardView = 5,
  kEngineGen = 6,
  kServeStats = 7,
  kServeQueue = 8,
};

namespace sync_internal {

#if ROTIND_CONTRACTS_ENABLED

/// Ranks of the mutexes this thread currently holds, acquisition order.
inline std::vector<int>& HeldRanks() {
  thread_local std::vector<int> held;
  return held;
}

/// Checked BEFORE blocking on the mutex, so a hierarchy violation aborts
/// with a clean message instead of (sometimes) deadlocking first.
inline void CheckRankBeforeLock(int rank) {
  for (const int held : HeldRanks()) {
    ROTIND_CONTRACT(rank < held,
                    "lock-order hierarchy violated: acquiring a mutex whose "
                    "LockRank is not strictly below every held rank "
                    "(order: serve queue > serve stats > engine gen > "
                    "shard view > delta segment > backend error > "
                    "buffer pool > fault schedule > leaf)");
  }
}

inline void NoteLocked(int rank) { HeldRanks().push_back(rank); }

inline void NoteUnlocked(int rank) {
  std::vector<int>& held = HeldRanks();
  for (std::size_t i = held.size(); i > 0; --i) {
    if (held[i - 1] == rank) {
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(i - 1));
      return;
    }
  }
  ROTIND_CONTRACT(false, "released a ranked mutex this thread does not hold");
}

#else  // !ROTIND_CONTRACTS_ENABLED

inline void CheckRankBeforeLock(int) {}
inline void NoteLocked(int) {}
inline void NoteUnlocked(int) {}

#endif  // ROTIND_CONTRACTS_ENABLED

}  // namespace sync_internal

/// A std::mutex carrying (a) the Clang `capability` attribute so fields
/// can be ROTIND_GUARDED_BY it, and (b) a LockRank checked against the
/// thread's held set in contract-enabled builds.
///
/// Method names are lowercase because Mutex satisfies the standard
/// BasicLockable concept — that is what lets CondVar (a
/// std::condition_variable_any) wait on it directly, and what keeps
/// `std::scoped_lock`-style generic code usable in tests.
class ROTIND_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank = LockRank::kLeaf)
      : rank_(static_cast<int>(rank)) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ROTIND_ACQUIRE() {
    sync_internal::CheckRankBeforeLock(rank_);
    mu_.lock();
    sync_internal::NoteLocked(rank_);
  }

  void unlock() ROTIND_RELEASE() {
    sync_internal::NoteUnlocked(rank_);
    mu_.unlock();
  }

  [[nodiscard]] bool try_lock() ROTIND_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    // try_lock never blocks, so an out-of-order acquisition cannot
    // deadlock — but it still violates the discipline; check after the
    // fact so the contract message fires in debug builds.
    sync_internal::CheckRankBeforeLock(rank_);
    sync_internal::NoteLocked(rank_);
    return true;
  }

  [[nodiscard]] LockRank rank() const {
    return static_cast<LockRank>(rank_);
  }

 private:
  std::mutex mu_;
  const int rank_;
};

/// RAII scoped acquisition of a Mutex — the only way annotated code should
/// hold one (the analysis tracks the capability for exactly this scope).
class ROTIND_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ROTIND_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() ROTIND_RELEASE() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

/// Condition variable that waits directly on a rotind::Mutex (via
/// condition_variable_any over BasicLockable), so the rank bookkeeping
/// stays consistent across the internal unlock/relock of a wait.
///
/// No predicate-taking overloads on purpose: the thread-safety analysis
/// cannot see through a predicate functor's captured capabilities, so
/// callers write the standard `while (!cond) cv.Wait(mu);` loop in a scope
/// where the analysis knows `mu` is held (spurious wakeups are therefore
/// handled at every call site by construction).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  /// Atomically releases `mu`, blocks until notified (or spuriously
  /// woken), and reacquires `mu` before returning.
  void Wait(Mutex& mu) ROTIND_REQUIRES(mu) { cv_.wait(mu); }

  /// Wait(), bounded by `deadline`. Returns false iff the deadline passed
  /// before a notification; `mu` is held again either way.
  template <typename Clock, typename Duration>
  [[nodiscard]] bool WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      ROTIND_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline) == std::cv_status::no_timeout;
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace rotind

#endif  // ROTIND_CORE_SYNC_H_
