#ifndef ROTIND_CORE_ALIGNED_H_
#define ROTIND_CORE_ALIGNED_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>

namespace rotind {

/// Cache-line alignment guaranteed by AlignedBuffer. 64 bytes is both the
/// x86 cache line and the widest vector register we target (one AVX-512
/// lane group; two AVX2 __m256d), so aligned loads stay aligned for every
/// dispatch tier.
inline constexpr std::size_t kSimdAlignment = 64;

/// A growable array of doubles whose base pointer is always 64-byte
/// aligned — the backing store for FlatDataset's doubled buffer and SoA
/// tiles, where the SIMD kernels require aligned tile loads.
///
/// Semantics mirror the std::vector<double> it replaces: resize preserves
/// the prefix and zero-fills the new tail, capacity grows geometrically so
/// repeated FlatDataset::Add stays amortized O(1). Allocation goes through
/// std::aligned_alloc (RAII-owned; kernels are new/delete-free by lint
/// rule), with byte sizes rounded up to the alignment as the C standard
/// requires.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  AlignedBuffer(const AlignedBuffer& other) { CopyFrom(other); }
  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  AlignedBuffer(AlignedBuffer&&) = default;
  AlignedBuffer& operator=(AlignedBuffer&&) = default;

  double* data() { return data_.get(); }
  const double* data() const { return data_.get(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  double& operator[](std::size_t i) { return data_[i]; }
  const double& operator[](std::size_t i) const { return data_[i]; }

  void reserve(std::size_t capacity) {
    if (capacity > capacity_) Reallocate(capacity);
  }

  /// Grows (zero-filling the new tail) or shrinks the logical size; never
  /// releases capacity.
  void resize(std::size_t new_size) {
    if (new_size > capacity_) {
      Reallocate(std::max(new_size, capacity_ + capacity_ / 2));
    }
    if (new_size > size_) {
      std::memset(data_.get() + size_, 0,
                  (new_size - size_) * sizeof(double));
    }
    size_ = new_size;
  }

 private:
  struct FreeDeleter {
    void operator()(double* p) const { std::free(p); }
  };

  void Reallocate(std::size_t capacity) {
    // aligned_alloc requires the byte size to be a multiple of the
    // alignment.
    const std::size_t doubles_per_line = kSimdAlignment / sizeof(double);
    const std::size_t rounded =
        (capacity + doubles_per_line - 1) / doubles_per_line *
        doubles_per_line;
    std::unique_ptr<double[], FreeDeleter> fresh(static_cast<double*>(
        std::aligned_alloc(kSimdAlignment, rounded * sizeof(double))));
    if (size_ > 0) {
      std::memcpy(fresh.get(), data_.get(), size_ * sizeof(double));
    }
    data_ = std::move(fresh);
    capacity_ = rounded;
  }

  void CopyFrom(const AlignedBuffer& other) {
    size_ = 0;
    resize(other.size_);
    if (size_ > 0) {
      std::memcpy(data_.get(), other.data_.get(), size_ * sizeof(double));
    }
  }

  std::unique_ptr<double[], FreeDeleter> data_;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

/// True when `p` satisfies the SIMD alignment contract.
inline bool IsSimdAligned(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % kSimdAlignment == 0;
}

}  // namespace rotind

#endif  // ROTIND_CORE_ALIGNED_H_
