#ifndef ROTIND_CORE_CONTRACTS_H_
#define ROTIND_CORE_CONTRACTS_H_

/// Debug contract checks for the paper's correctness invariants.
///
/// The headline claim of the paper is *exactness*: LB_Keogh against a wedge
/// never exceeds the true rotation-invariant distance (Propositions 1-2).
/// That property is easy to break silently — a subtly-wrong envelope still
/// returns plausible neighbors, it just stops being exact. These macros let
/// the code assert the lower-bound sandwich at the point where each
/// invariant is established:
///
///   * `ROTIND_DCHECK(cond)` — an internal-consistency check (the
///     `assert`-with-teeth used on paths where `<cassert>` is compiled out).
///   * `ROTIND_CONTRACT(cond, msg)` — a named paper invariant (L <= U
///     pointwise, DTW widening containment, wedge nesting, LB <= exact).
///     The message should cite the invariant, not restate the condition.
///
/// Cost model: both macros compile to a no-op in ordinary Release builds —
/// the condition is type-checked but never evaluated, so contracts cannot
/// bit-rot and cannot slow the hot path. They are compiled in (and abort
/// the process on violation, which is what the death tests rely on) when
/// `ROTIND_ENABLE_CONTRACTS` is defined. CMake defines it for every
/// sanitizer build (`ROTIND_SANITIZE` != OFF) and whenever
/// `-DROTIND_CONTRACTS=ON` is given explicitly.

#include <cstdio>
#include <cstdlib>

namespace rotind {
namespace internal {

[[noreturn]] inline void ContractFailure(const char* kind, const char* expr,
                                         const char* file, int line,
                                         const char* msg) {
  std::fprintf(stderr, "%s failed at %s:%d: (%s)%s%s\n", kind, file, line,
               expr, (msg != nullptr && msg[0] != '\0') ? ": " : "",
               (msg != nullptr) ? msg : "");
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace rotind

#ifdef ROTIND_ENABLE_CONTRACTS

#define ROTIND_CONTRACTS_ENABLED 1

#define ROTIND_CONTRACT(cond, msg)                                   \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::rotind::internal::ContractFailure("ROTIND_CONTRACT", #cond,  \
                                          __FILE__, __LINE__, msg);  \
    }                                                                \
  } while (false)

#define ROTIND_DCHECK(cond)                                          \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::rotind::internal::ContractFailure("ROTIND_DCHECK", #cond,    \
                                          __FILE__, __LINE__, "");   \
    }                                                                \
  } while (false)

#else  // !ROTIND_ENABLE_CONTRACTS

#define ROTIND_CONTRACTS_ENABLED 0

// `sizeof` keeps the condition an unevaluated-but-compiled operand: a
// contract referring to a renamed member still breaks the build, but costs
// nothing at runtime.
#define ROTIND_CONTRACT(cond, msg) \
  static_cast<void>(sizeof((cond) ? 1 : 0))
#define ROTIND_DCHECK(cond) static_cast<void>(sizeof((cond) ? 1 : 0))

#endif  // ROTIND_ENABLE_CONTRACTS

#endif  // ROTIND_CORE_CONTRACTS_H_
