#include "src/core/flat_dataset.h"

#include <cassert>
#include <cstring>

#include "src/core/contracts.h"

namespace rotind {

FlatDataset FlatDataset::FromItems(const std::vector<Series>& items) {
  FlatDataset out;
  if (items.empty()) return out;
  out.n_ = items[0].size();
  out.buffer_.reserve(items.size() * 2 * out.n_);
  out.tiles_.reserve(((items.size() + kTileLanes - 1) / kTileLanes) *
                     kTileLanes * out.n_);
  for (const Series& s : items) out.Add(s);
  return out;
}

FlatDataset FlatDataset::FromDataset(const Dataset& dataset) {
  FlatDataset out = FromItems(dataset.items);
  out.labels_ = dataset.labels;
  out.names_ = dataset.names;
  return out;
}

StatusOr<FlatDataset> FlatDataset::FromItemsChecked(
    const std::vector<Series>& items) {
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].empty()) {
      return Status::InvalidArgument("item " + std::to_string(i) +
                                     " is empty");
    }
    if (items[i].size() != items[0].size()) {
      return Status::InvalidArgument(
          "item " + std::to_string(i) + " has length " +
          std::to_string(items[i].size()) + ", item 0 has length " +
          std::to_string(items[0].size()));
    }
  }
  return FromItems(items);
}

void FlatDataset::Add(const Series& s) {
  if (count_ == 0 && n_ == 0) n_ = s.size();
  assert(s.size() == n_ && "FlatDataset items must share one length");
  const std::size_t old = buffer_.size();
  buffer_.resize(old + 2 * n_);
  std::memcpy(buffer_.data() + old, s.data(), n_ * sizeof(double));
  std::memcpy(buffer_.data() + old + n_, s.data(), n_ * sizeof(double));

  // Mirror the new item into its SoA tile column. The tile group is
  // zero-filled on allocation (AlignedBuffer::resize), so tail lanes of a
  // partial group already hold the finite padding the kernels rely on.
  const std::size_t group = count_ / kTileLanes;
  const std::size_t lane = count_ % kTileLanes;
  tiles_.resize((group + 1) * kTileLanes * n_);
  double* t = tiles_.data() + group * kTileLanes * n_;
  for (std::size_t i = 0; i < n_; ++i) t[i * kTileLanes + lane] = s[i];
  ++count_;

  ROTIND_CONTRACT(IsSimdAligned(buffer_.data()) && IsSimdAligned(tiles_.data()),
                  "FlatDataset backing storage must stay 64-byte aligned — "
                  "the src/simd/ kernels issue aligned tile loads");
}

Series FlatDataset::Materialize(std::size_t i) const {
  const double* p = data(i);
  return Series(p, p + n_);
}

}  // namespace rotind
