#ifndef ROTIND_CORE_FLAT_DATASET_H_
#define ROTIND_CORE_FLAT_DATASET_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "src/core/aligned.h"
#include "src/core/series.h"
#include "src/core/status.h"

namespace rotind {

/// Zero-copy view of n contiguous doubles — one series, or one rotation of
/// one series inside a doubled buffer.
using SeriesView = std::span<const double>;

/// Contiguous, cache-friendly storage for a database of equal-length series.
///
/// Every item is stored DOUBLED (s ++ s) in one flat buffer, so:
///  * scans walk memory linearly instead of chasing per-item heap
///    allocations (`std::vector<Series>` costs one indirection and a likely
///    cache miss per object);
///  * every rotation of every item is a contiguous window `rotation(i, s)`
///    — a zero-copy SeriesView, the same trick RotationSet plays for query
///    rotations, now available database-side.
///
/// Alongside the per-series (AoS) layout, the same data is mirrored as
/// 64-byte-aligned TRANSPOSED tiles (structure-of-arrays): tile group g
/// packs items [g*kTileLanes, g*kTileLanes + kTileLanes) lane-interleaved,
/// with element t of lane l at `tile(g)[t * kTileLanes + l]`. One aligned
/// load therefore fetches element t of eight consecutive candidates — the
/// feed shape the src/simd/ blocked-scoring kernels want. Tail lanes past
/// size() are zero-filled (finite, so padded lanes compute garbage safely;
/// callers ignore them). Both layouts are 64-byte aligned (AlignedBuffer).
///
/// Labels and names ride along (empty when absent), making FlatDataset a
/// drop-in for the `Dataset` aggregate in engine-facing code.
class FlatDataset {
 public:
  /// Candidates per SoA tile group — the blocked-scoring lane width.
  static constexpr std::size_t kTileLanes = 8;

  FlatDataset() = default;

  /// Builds from owned series. All items must share one length; asserted in
  /// debug builds (use FromItemsChecked at untrusted boundaries).
  static FlatDataset FromItems(const std::vector<Series>& items);

  /// Builds from a labelled Dataset, carrying labels/names over.
  static FlatDataset FromDataset(const Dataset& dataset);

  /// Validated builder: rejects ragged or empty-item inputs with a Status.
  [[nodiscard]] static StatusOr<FlatDataset> FromItemsChecked(
      const std::vector<Series>& items);

  /// Appends one series. The first Add fixes the length; later mismatches
  /// are asserted in debug builds.
  void Add(const Series& s);

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  /// Common length n of every item (0 when empty).
  std::size_t length() const { return n_; }

  /// Pointer to item i: n contiguous doubles (the first half of its doubled
  /// region), valid until the next Add.
  const double* data(std::size_t i) const {
    return buffer_.data() + i * 2 * n_;
  }

  /// Item i as a zero-copy view.
  SeriesView view(std::size_t i) const { return {data(i), n_}; }

  /// Item i circularly left-shifted by `shift` in [0, n), as a zero-copy
  /// view into the doubled region.
  SeriesView rotation(std::size_t i, std::size_t shift) const {
    return {data(i) + shift, n_};
  }

  /// Number of SoA tile groups (ceil(size / kTileLanes)).
  std::size_t tile_groups() const {
    return (count_ + kTileLanes - 1) / kTileLanes;
  }

  /// 64-byte-aligned SoA tile for group g: n * kTileLanes doubles, element
  /// t of lane l at index t * kTileLanes + l, lanes past size() zero.
  /// Valid until the next Add.
  const double* tile(std::size_t g) const {
    return tiles_.data() + g * kTileLanes * n_;
  }

  /// Item i as an owned Series (for callers that need a value).
  Series Materialize(std::size_t i) const;

  const std::vector<int>& labels() const { return labels_; }
  const std::vector<std::string>& names() const { return names_; }
  int label(std::size_t i) const { return labels_[i]; }

 private:
  std::size_t n_ = 0;
  std::size_t count_ = 0;
  /// 2n doubles per item: item i occupies [i*2n, (i+1)*2n) as s ++ s.
  AlignedBuffer buffer_;
  /// Transposed mirror of the first halves: kTileLanes * n doubles per
  /// group, see tile().
  AlignedBuffer tiles_;
  std::vector<int> labels_;
  std::vector<std::string> names_;
};

}  // namespace rotind

#endif  // ROTIND_CORE_FLAT_DATASET_H_
