#ifndef ROTIND_CORE_STATUS_H_
#define ROTIND_CORE_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace rotind {

/// Error taxonomy for the library's fallible boundaries. The general codes
/// (kInvalidArgument..kInternal) cover public entry-point validation; the
/// loader codes give file-format failures distinct, testable identities so a
/// caller (or the fault-injection harness) can assert *why* a file was
/// rejected, not merely that it was.
enum class StatusCode {
  kOk = 0,

  // --- General validation / runtime errors ------------------------------
  /// Caller passed a structurally invalid input (empty query, mismatched
  /// series lengths, non-finite values, k < 1, negative radius, ...).
  kInvalidArgument,
  /// An id or index is outside the valid range of its container.
  kOutOfRange,
  /// A named resource (typically a file) does not exist or cannot be opened.
  kNotFound,
  /// An I/O operation failed mid-flight (short write, stream error).
  kIoError,
  /// A library invariant was violated; indicates a bug in rotind itself.
  kInternal,

  // --- Loader-specific errors (binary "RIND" container) -----------------
  /// The file does not start with the "RIND" magic bytes.
  kBadMagic,
  /// The container version is one this build cannot read.
  kVersionMismatch,
  /// The file ends before the sections promised by its header.
  kTruncated,
  /// Header fields are internally absurd: count/length so large no file of
  /// the observed size could hold them, count*length overflow, zero length
  /// with nonzero count, or an over-cap name length.
  kCorruptHeader,

  // --- Payload / text-format errors (binary and UCR) --------------------
  /// A payload value is NaN or +/-Inf; distances over such values are
  /// meaningless, so loaders reject them at the boundary.
  kBadValue,
  /// UCR text: a row's value count differs from the first row's.
  kRaggedRow,
  /// UCR text: a field failed to parse as a number.
  kParseError,
  /// The file contains no series at all.
  kEmptyDataset,

  // --- Serving / cooperative-cancellation errors -------------------------
  /// A query's deadline expired before the cascade finished. The result is
  /// intentionally withheld: a partially-scanned candidate set must never be
  /// presented as an exact answer.
  kDeadlineExceeded,
  /// The query was cancelled (shutdown kill-switch or caller request)
  /// before the cascade finished.
  kCancelled,
  /// Admission control rejected the request: the server's bounded queue was
  /// full. The request was never started; retrying later is safe.
  kOverloaded,
};

/// Human-readable name of a StatusCode ("kBadMagic" -> "BAD_MAGIC").
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kIoError: return "IO_ERROR";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kBadMagic: return "BAD_MAGIC";
    case StatusCode::kVersionMismatch: return "VERSION_MISMATCH";
    case StatusCode::kTruncated: return "TRUNCATED";
    case StatusCode::kCorruptHeader: return "CORRUPT_HEADER";
    case StatusCode::kBadValue: return "BAD_VALUE";
    case StatusCode::kRaggedRow: return "RAGGED_ROW";
    case StatusCode::kParseError: return "PARSE_ERROR";
    case StatusCode::kEmptyDataset: return "EMPTY_DATASET";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kOverloaded: return "OVERLOADED";
  }
  return "UNKNOWN";
}

/// A lightweight success-or-error value: a code plus a message. No
/// exceptions, no allocation on the OK path. Modeled on absl::Status but
/// self-contained (the container bakes in no abseil).
///
/// The class is [[nodiscard]]: a silently dropped Status is a swallowed
/// load/validate error, which is exactly the bug class this type exists to
/// prevent. Intentional discards must be spelled `(void)expr` (rotind_lint
/// additionally requires the declaration-site attribute on every
/// Status-returning function, so the intent survives even through
/// references and type aliases).
class [[nodiscard]] Status {
 public:
  /// Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status Ok() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  [[nodiscard]] static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  [[nodiscard]] static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "BAD_MAGIC: file does not start with 'RIND'" (or "OK").
  std::string ToString() const {
    if (ok()) return "OK";
    std::string s = StatusCodeName(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-OK Status explaining its absence.
/// Supports move-only T (e.g. std::unique_ptr). `value()` on an error, or
/// `status()`-less misuse, asserts in debug builds and returns a
/// default-ish reference in release — callers must check ok() first.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from a non-OK Status (the error path reads naturally:
  /// `return Status::InvalidArgument(...)`). Constructing from an OK status
  /// without a value is a programming error and degrades to kInternal.
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design so the
  // error path reads `return Status::InvalidArgument(...)`.
  StatusOr(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }
  /// Implicit from a value: `return dataset;`.
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design so the
  // success path reads `return dataset;`.
  StatusOr(T value) : value_(std::move(value)) {}

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return *std::move(value_); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when in the error state.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;            ///< OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace rotind

#endif  // ROTIND_CORE_STATUS_H_
