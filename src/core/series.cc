#include "src/core/series.h"

#include <cmath>
#include <cstdlib>

namespace rotind {

double Mean(const Series& s) {
  if (s.empty()) return 0.0;
  double sum = 0.0;
  for (double v : s) sum += v;
  return sum / static_cast<double>(s.size());
}

double StdDev(const Series& s) {
  if (s.empty()) return 0.0;
  const double mu = Mean(s);
  double acc = 0.0;
  for (double v : s) {
    const double d = v - mu;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(s.size()));
}

void ZNormalize(Series* s) {
  if (s == nullptr || s->empty()) return;
  const double mu = Mean(*s);
  const double sigma = StdDev(*s);
  if (sigma < kFlatEpsilon) {
    for (double& v : *s) v -= mu;
    return;
  }
  const double inv = 1.0 / sigma;
  for (double& v : *s) v = (v - mu) * inv;
}

Series ZNormalized(const Series& s) {
  Series out = s;
  ZNormalize(&out);
  return out;
}

Series RotateLeft(const Series& s, long shift) {
  const long n = static_cast<long>(s.size());
  if (n == 0) return {};
  long k = shift % n;
  if (k < 0) k += n;
  Series out(s.size());
  for (long i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] =
        s[static_cast<std::size_t>((i + k) % n)];
  }
  return out;
}

Series Reversed(const Series& s) {
  return Series(s.rbegin(), s.rend());
}

Series Doubled(const Series& s) {
  Series out;
  out.reserve(s.size() * 2);
  out.insert(out.end(), s.begin(), s.end());
  out.insert(out.end(), s.begin(), s.end());
  return out;
}

Series ResampleLinear(const Series& s, std::size_t m) {
  const std::size_t n = s.size();
  if (n == 0 || m == 0) return {};
  if (n == m) return s;
  Series out(m);
  // Treat s as one period of a periodic function sampled at i/n; sample the
  // linear interpolant at j/m, wrapping the final segment back to s[0].
  for (std::size_t j = 0; j < m; ++j) {
    const double pos = static_cast<double>(j) * static_cast<double>(n) /
                       static_cast<double>(m);
    const std::size_t i0 = static_cast<std::size_t>(pos) % n;
    const std::size_t i1 = (i0 + 1) % n;
    const double frac = pos - std::floor(pos);
    out[j] = s[i0] * (1.0 - frac) + s[i1] * frac;
  }
  return out;
}

}  // namespace rotind
