#include "src/cluster/linkage.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <sstream>

namespace rotind {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Lance-Williams distance update between the merge of (a, b) and another
/// cluster c. For Ward, the matrix holds SQUARED distances.
double LanceWilliams(Linkage linkage, double d_ac, double d_bc, double d_ab,
                     int size_a, int size_b, int size_c) {
  switch (linkage) {
    case Linkage::kSingle:
      return std::min(d_ac, d_bc);
    case Linkage::kComplete:
      return std::max(d_ac, d_bc);
    case Linkage::kAverage: {
      const double na = size_a;
      const double nb = size_b;
      return (na * d_ac + nb * d_bc) / (na + nb);
    }
    case Linkage::kWard: {
      const double na = size_a;
      const double nb = size_b;
      const double nc = size_c;
      const double total = na + nb + nc;
      return ((na + nc) * d_ac + (nb + nc) * d_bc - nc * d_ab) / total;
    }
  }
  return 0.0;  // unreachable
}

}  // namespace

std::vector<int> Dendrogram::LeavesUnder(int node) const {
  std::vector<int> out;
  std::vector<int> stack = {node};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (IsLeaf(id)) {
      out.push_back(id);
    } else {
      // Push right first so that left leaves come out first.
      stack.push_back(nodes[id].right);
      stack.push_back(nodes[id].left);
    }
  }
  return out;
}

std::vector<int> Dendrogram::CutIntoK(int k) const {
  k = std::max(1, std::min(k, num_leaves));
  std::vector<int> roots = {root()};
  while (static_cast<int>(roots.size()) < k) {
    // Split the cluster with the largest merge height; leaves cannot split.
    int best = -1;
    double best_height = -kInf;
    for (std::size_t i = 0; i < roots.size(); ++i) {
      const int id = roots[i];
      if (!IsLeaf(id) && nodes[id].height >= best_height) {
        // ">=" with a linear scan prefers the most recently created merge on
        // ties, which matches undoing merges in reverse creation order.
        if (nodes[id].height > best_height ||
            (best >= 0 && id > roots[static_cast<std::size_t>(best)])) {
          best_height = nodes[id].height;
          best = static_cast<int>(i);
        }
      }
    }
    if (best < 0) break;  // all singleton leaves already
    const int id = roots[static_cast<std::size_t>(best)];
    roots[static_cast<std::size_t>(best)] = nodes[id].left;
    roots.push_back(nodes[id].right);
  }
  return roots;
}

std::vector<int> Dendrogram::ClusterLabels(int k) const {
  const std::vector<int> roots = CutIntoK(k);
  std::vector<int> labels(static_cast<std::size_t>(num_leaves), 0);
  for (std::size_t c = 0; c < roots.size(); ++c) {
    for (int leaf : LeavesUnder(roots[c])) {
      labels[static_cast<std::size_t>(leaf)] = static_cast<int>(c);
    }
  }
  return labels;
}

std::string Dendrogram::ToText(const std::vector<std::string>& labels) const {
  std::ostringstream out;
  // Recursive pretty-printer: right subtree above, left below, heights shown
  // at internal nodes.
  std::function<void(int, std::string, bool)> emit = [&](int id,
                                                         std::string prefix,
                                                         bool is_last) {
    out << prefix << (is_last ? "`-- " : "|-- ");
    if (IsLeaf(id)) {
      if (static_cast<std::size_t>(id) < labels.size()) {
        out << labels[static_cast<std::size_t>(id)];
      } else {
        out << "leaf " << id;
      }
      out << "\n";
      return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "(h=%.4f)", nodes[id].height);
    out << buf << "\n";
    const std::string child_prefix = prefix + (is_last ? "    " : "|   ");
    emit(nodes[id].left, child_prefix, false);
    emit(nodes[id].right, child_prefix, true);
  };
  emit(root(), "", true);
  return out.str();
}

Dendrogram AgglomerativeCluster(int n,
                                const std::function<double(int, int)>& dist,
                                Linkage linkage) {
  assert(n >= 1);
  Dendrogram dg;
  dg.num_leaves = n;
  dg.nodes.resize(static_cast<std::size_t>(n));
  if (n == 1) return dg;

  const bool squared = (linkage == Linkage::kWard);

  // Slot-based distance matrix: slot i initially holds leaf i; when (a, b)
  // merge, the merged cluster takes slot min(a, b) and slot max(a, b) dies.
  const std::size_t un = static_cast<std::size_t>(n);
  std::vector<double> d(un * un, 0.0);
  for (std::size_t i = 0; i < un; ++i) {
    for (std::size_t j = i + 1; j < un; ++j) {
      double v = dist(static_cast<int>(i), static_cast<int>(j));
      if (squared) v *= v;
      d[i * un + j] = v;
      d[j * un + i] = v;
    }
  }

  std::vector<bool> active(un, true);
  std::vector<int> node_of_slot(un);
  std::vector<int> size_of_slot(un, 1);
  for (std::size_t i = 0; i < un; ++i) node_of_slot[i] = static_cast<int>(i);

  std::vector<int> chain;
  chain.reserve(un);
  int merges_done = 0;

  auto nearest = [&](int slot, int prefer) -> int {
    double best = kInf;
    int best_slot = -1;
    for (std::size_t j = 0; j < un; ++j) {
      if (!active[j] || static_cast<int>(j) == slot) continue;
      const double v = d[static_cast<std::size_t>(slot) * un + j];
      if (v < best ||
          (v == best && static_cast<int>(j) == prefer)) {
        best = v;
        best_slot = static_cast<int>(j);
      }
    }
    return best_slot;
  };

  while (merges_done < n - 1) {
    if (chain.empty()) {
      for (std::size_t i = 0; i < un; ++i) {
        if (active[i]) {
          chain.push_back(static_cast<int>(i));
          break;
        }
      }
    }
    const int top = chain.back();
    const int prev = chain.size() >= 2 ? chain[chain.size() - 2] : -1;
    const int nn = nearest(top, prev);
    assert(nn >= 0);
    if (nn == prev) {
      // Reciprocal nearest neighbours: merge top and prev.
      chain.pop_back();
      chain.pop_back();
      const int a = std::min(top, prev);
      const int b = std::max(top, prev);
      const double d_ab =
          d[static_cast<std::size_t>(a) * un + static_cast<std::size_t>(b)];

      Dendrogram::Node node;
      node.left = node_of_slot[static_cast<std::size_t>(a)];
      node.right = node_of_slot[static_cast<std::size_t>(b)];
      node.height = squared ? std::sqrt(std::max(0.0, d_ab)) : d_ab;
      node.size = size_of_slot[static_cast<std::size_t>(a)] +
                  size_of_slot[static_cast<std::size_t>(b)];
      dg.nodes.push_back(node);
      const int new_node_id = static_cast<int>(dg.nodes.size()) - 1;

      for (std::size_t c = 0; c < un; ++c) {
        if (!active[c] || static_cast<int>(c) == a ||
            static_cast<int>(c) == b) {
          continue;
        }
        const double d_ac = d[static_cast<std::size_t>(a) * un + c];
        const double d_bc = d[static_cast<std::size_t>(b) * un + c];
        const double v = LanceWilliams(
            linkage, d_ac, d_bc, d_ab,
            size_of_slot[static_cast<std::size_t>(a)],
            size_of_slot[static_cast<std::size_t>(b)], size_of_slot[c]);
        d[static_cast<std::size_t>(a) * un + c] = v;
        d[c * un + static_cast<std::size_t>(a)] = v;
      }
      active[static_cast<std::size_t>(b)] = false;
      node_of_slot[static_cast<std::size_t>(a)] = new_node_id;
      size_of_slot[static_cast<std::size_t>(a)] = node.size;
      ++merges_done;
    } else {
      chain.push_back(nn);
    }
  }
  return dg;
}

}  // namespace rotind
