#ifndef ROTIND_CLUSTER_LINKAGE_H_
#define ROTIND_CLUSTER_LINKAGE_H_

#include <functional>
#include <string>
#include <vector>

namespace rotind {

/// Linkage criteria for agglomerative hierarchical clustering. The paper
/// uses group average linkage both for its dendrogram figures (Figures 9,
/// 16, 17, 18) and to derive wedge sets (Section 4.1).
enum class Linkage {
  kSingle,
  kComplete,
  kAverage,  ///< group average (UPGMA) — the paper's choice
  kWard,
};

/// A full merge tree over n leaves: nodes[0..n) are the leaves, each
/// subsequent node records one merge. nodes.back() is the root.
struct Dendrogram {
  struct Node {
    int left = -1;    ///< child node id, -1 for leaves
    int right = -1;   ///< child node id, -1 for leaves
    double height = 0.0;  ///< linkage distance at which the merge happened
    int size = 1;     ///< number of leaves underneath
  };

  std::vector<Node> nodes;
  int num_leaves = 0;

  int root() const { return static_cast<int>(nodes.size()) - 1; }
  bool IsLeaf(int id) const { return id < num_leaves; }

  /// Leaf ids under `node`, in tree order.
  std::vector<int> LeavesUnder(int node) const;

  /// Partitions the leaves into k clusters by repeatedly splitting the
  /// current cluster with the largest merge height (paper Figure 10: wedge
  /// sets of every size are nested cuts of the dendrogram). Returns the node
  /// ids of the k subtree roots. k is clamped to [1, num_leaves].
  std::vector<int> CutIntoK(int k) const;

  /// Flat cluster labels (0..k-1 per leaf) for the CutIntoK partition.
  std::vector<int> ClusterLabels(int k) const;

  /// ASCII rendering of the tree (for the clustering "sanity check"
  /// examples that stand in for the paper's dendrogram figures). `labels`
  /// may be empty, in which case leaf indices are printed.
  std::string ToText(const std::vector<std::string>& labels) const;
};

/// Agglomerative clustering of n items with pairwise distances given by
/// `dist` (called O(n^2) times up front). Uses the nearest-neighbor-chain
/// algorithm with Lance-Williams updates: O(n^2) time, O(n^2) memory. All
/// four supported linkages are reducible, which NN-chain requires.
Dendrogram AgglomerativeCluster(int n,
                                const std::function<double(int, int)>& dist,
                                Linkage linkage);

}  // namespace rotind

#endif  // ROTIND_CLUSTER_LINKAGE_H_
