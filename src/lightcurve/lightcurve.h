#ifndef ROTIND_LIGHTCURVE_LIGHTCURVE_H_
#define ROTIND_LIGHTCURVE_LIGHTCURVE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/core/random.h"
#include "src/core/series.h"

namespace rotind {

/// Star light curves (paper Section 2.4): brightness of a periodic variable
/// star as a function of phase. A folded period has "no natural starting
/// point", so matching requires comparing every circular shift — exactly
/// the rotation-invariance problem. These generators stand in for the
/// OGLE / Harvard Time Series Center data (see DESIGN.md substitutions);
/// the three classes mirror the 3-class hand-labelled set of the paper's
/// Table 8 "Light-Curve" row.
enum class VariableStarClass {
  kEclipsingBinary,  ///< two dips per period (primary + secondary eclipse)
  kRrLyrae,          ///< sawtooth: fast rise, slow exponential-ish decline
  kCepheid,          ///< smooth asymmetric sinusoidal pulsation
};

/// Human-readable class name ("EclipsingBinary", ...).
std::string ToString(VariableStarClass cls);

/// Noise-free phase-folded template, sampled at n phases, z-normalised.
Series LightCurveTemplate(VariableStarClass cls, std::size_t n);

/// Parameters of one synthetic observation.
struct LightCurveOptions {
  double noise_sigma = 0.15;      ///< photometric noise after z-norm
  double shape_jitter = 0.1;      ///< per-star template parameter jitter
  bool random_phase = true;       ///< random fold origin (circular shift)
};

/// One synthetic star: jittered template + noise + random phase,
/// z-normalised.
Series GenerateLightCurve(VariableStarClass cls, std::size_t n, Rng* rng,
                          const LightCurveOptions& options = {});

/// A labelled light-curve dataset with `per_class` stars of each of the
/// three classes (labels 0..2).
Dataset MakeLightCurveDataset(std::size_t per_class, std::size_t n,
                              std::uint64_t seed,
                              const LightCurveOptions& options = {});

}  // namespace rotind

#endif  // ROTIND_LIGHTCURVE_LIGHTCURVE_H_
