#include "src/lightcurve/lightcurve.h"

#include <cmath>

#include "src/shape/generate.h"

namespace rotind {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Smooth dip of the given fractional width centred at `center` (phases in
/// [0, 1)), shaped like a Gaussian eclipse.
double Dip(double phase, double center, double width, double depth) {
  double d = phase - center;
  d -= std::round(d);  // wrap to [-0.5, 0.5)
  return -depth * std::exp(-(d * d) / (2.0 * width * width));
}

Series RawTemplate(VariableStarClass cls, std::size_t n, double jitter,
                   Rng* rng) {
  auto jit = [&](double v, double scale) {
    return rng == nullptr ? v : v + rng->Gaussian(0.0, jitter * scale);
  };
  Series out(n, 0.0);
  switch (cls) {
    case VariableStarClass::kEclipsingBinary: {
      const double primary_depth = jit(1.0, 0.3);
      const double secondary_depth = jit(0.45, 0.2);
      const double width = std::max(0.01, jit(0.035, 0.02));
      const double separation = jit(0.5, 0.05);
      for (std::size_t i = 0; i < n; ++i) {
        const double phase =
            static_cast<double>(i) / static_cast<double>(n);
        out[i] = Dip(phase, 0.25, width, primary_depth) +
                 Dip(phase, 0.25 + separation, width, secondary_depth);
      }
      break;
    }
    case VariableStarClass::kRrLyrae: {
      // Fast linear rise over ~15% of the period, then exponential decline.
      const double rise = std::max(0.05, jit(0.15, 0.4));
      const double tau = std::max(0.1, jit(0.35, 0.7));
      for (std::size_t i = 0; i < n; ++i) {
        const double phase =
            static_cast<double>(i) / static_cast<double>(n);
        if (phase < rise) {
          out[i] = phase / rise;
        } else {
          out[i] = std::exp(-(phase - rise) / tau);
        }
      }
      break;
    }
    case VariableStarClass::kCepheid: {
      // Asymmetric pulsation: fundamental plus strong overtones (the
      // classic skewed saw-tooth Cepheid light curve; a pure sinusoid
      // would make every phase shift a near-match, which real Cepheids
      // are not).
      const double skew = jit(0.45, 0.5);
      const double o3 = jit(0.25, 0.08);
      const double o4 = jit(0.12, 0.05);
      for (std::size_t i = 0; i < n; ++i) {
        const double phase = kTwoPi * static_cast<double>(i) /
                             static_cast<double>(n);
        out[i] = std::sin(phase) + skew * std::sin(2.0 * phase + 0.8) +
                 o3 * std::sin(3.0 * phase + 1.9) +
                 o4 * std::sin(4.0 * phase + 2.4);
      }
      break;
    }
  }
  return out;
}

}  // namespace

std::string ToString(VariableStarClass cls) {
  switch (cls) {
    case VariableStarClass::kEclipsingBinary:
      return "EclipsingBinary";
    case VariableStarClass::kRrLyrae:
      return "RRLyrae";
    case VariableStarClass::kCepheid:
      return "Cepheid";
  }
  return "Unknown";
}

Series LightCurveTemplate(VariableStarClass cls, std::size_t n) {
  Series out = RawTemplate(cls, n, 0.0, nullptr);
  ZNormalize(&out);
  return out;
}

Series GenerateLightCurve(VariableStarClass cls, std::size_t n, Rng* rng,
                          const LightCurveOptions& options) {
  Series s = RawTemplate(cls, n, options.shape_jitter, rng);
  if (options.random_phase) {
    s = RotateLeft(s, static_cast<long>(rng->NextBounded(n)));
  }
  s = AddNoise(s, rng, options.noise_sigma);
  ZNormalize(&s);
  return s;
}

Dataset MakeLightCurveDataset(std::size_t per_class, std::size_t n,
                              std::uint64_t seed,
                              const LightCurveOptions& options) {
  Dataset ds;
  Rng rng(seed);
  const VariableStarClass classes[] = {VariableStarClass::kEclipsingBinary,
                                       VariableStarClass::kRrLyrae,
                                       VariableStarClass::kCepheid};
  for (int label = 0; label < 3; ++label) {
    for (std::size_t i = 0; i < per_class; ++i) {
      ds.items.push_back(
          GenerateLightCurve(classes[label], n, &rng, options));
      ds.labels.push_back(label);
      ds.names.push_back(ToString(classes[label]) + "-" +
                         std::to_string(i));
    }
  }
  return ds;
}

}  // namespace rotind
