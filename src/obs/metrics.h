#ifndef ROTIND_OBS_METRICS_H_
#define ROTIND_OBS_METRICS_H_

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/core/status.h"
#include "src/core/step_counter.h"

namespace rotind::obs {

/// Query observability layer.
///
/// The paper's whole argument is a cost ledger (Tables 1-5 compare rivals by
/// pruning power and step counts), and Lemire's two-pass lower-bounding work
/// shows that *per-stage* bound-tightness measurement is what drives cascade
/// design. This subsystem attributes the engine's flat `StepCounter` totals
/// to individual cascade stages, records candidate flow (entered / pruned /
/// survived) per stage, tracks wedge-level H-Merge behavior and the
/// dynamic-K trajectory, and captures per-query latency histograms — all
/// exportable as structured JSON.
///
/// Contract (mirrors StepCounter): every instrumented entry point takes a
/// nullable `QueryMetrics*`; passing nullptr disables all observation and
/// reproduces the uninstrumented behavior bit-for-bit with no measurable
/// overhead. Attribution is exact: the per-stage `steps + setup_steps` sum
/// equals the legacy `StepCounter::total_steps()` for the same query
/// (asserted by tests/obs_engine_test.cc over the equivalence corpus).

/// Identity of one attribution bucket along the query path. The first five
/// mirror the engine's original cascade StageKinds, the next three belong
/// to the disk-backed RotationInvariantIndex, and the trailing two are the
/// cascade filter stages added later (appended so the numeric ids of
/// every earlier stage — and therefore old JSON baselines — are stable).
enum class StageId {
  kFftFilter = 0,      ///< cascade: FFT-magnitude lower-bound filter
  kWedge,              ///< cascade terminal: LB_Keogh wedges + H-Merge
  kExactScan,          ///< cascade terminal: early-abandoning rotation scan
  kFullScan,           ///< cascade terminal: full evaluation, no abandoning
  kFullScanBanded,     ///< cascade terminal: full evaluation, Sakoe-Chiba band
  kSignatureFilter,    ///< index: signature-space lower-bound pruning
  kDiskFetch,          ///< index: object fetches from the simulated disk
  kRefine,             ///< index: H-Merge refinement of fetched objects
  kLbImproved,         ///< cascade: two-pass LB_Improved wedge filter
  kVecSignature,       ///< cascade: pooled rotation-invariant vector filter
};
inline constexpr std::size_t kNumStages = 10;

/// Stable machine-readable name ("fft_filter", "wedge", ...).
const char* StageName(StageId id);

/// Candidate flow and cost attributed to one stage of one (or many merged)
/// queries. A "candidate" is one database object offered to the stage;
/// entered == pruned + survived always holds.
struct StageStats {
  std::uint64_t candidates_entered = 0;
  std::uint64_t candidates_pruned = 0;
  std::uint64_t candidates_survived = 0;
  /// Kernel steps (real-value subtractions) spent inside this stage.
  std::uint64_t steps = 0;
  /// One-off per-query setup steps charged to this stage (wedge-tree
  /// construction, the query's FFT).
  std::uint64_t setup_steps = 0;
  /// Distance evaluations cut short by early abandoning inside this stage.
  std::uint64_t early_abandons = 0;
  /// Wall-clock nanoseconds spent inside this stage (stage evaluation plus
  /// stage setup). Only meaningful on the machine that recorded it; never
  /// compared across runs.
  std::uint64_t wall_nanos = 0;
  /// Storage I/O attributed to this stage (populated for kDiskFetch when a
  /// query runs over a real StorageBackend; all zero otherwise and then
  /// omitted from the JSON). pages_read counts pages fetched from the
  /// medium — buffer-pool misses on the file backend, simulated page reads
  /// on the accounting backend.
  std::uint64_t pool_hits = 0;
  std::uint64_t pages_read = 0;
  std::uint64_t pool_evictions = 0;
  std::uint64_t io_bytes = 0;
  /// Transient-fault absorption by the storage retry loop: page pins that
  /// were re-attempted, and pins that eventually succeeded on a retry.
  /// Nonzero only under storage faults, so healthy runs keep their shape.
  std::uint64_t io_retries = 0;
  std::uint64_t io_faults_absorbed = 0;
  /// Whether this stage participated in at least one query.
  bool used = false;

  std::uint64_t total_steps() const { return steps + setup_steps; }
  bool has_io() const {
    return (pool_hits | pages_read | pool_evictions | io_bytes | io_retries |
            io_faults_absorbed) != 0;
  }
  StageStats& operator+=(const StageStats& o);
};

/// Fixed-bucket latency histogram: 40 power-of-two nanosecond buckets
/// (bucket b counts samples in [2^b, 2^(b+1)) ns; the last bucket absorbs
/// everything >= 2^39 ns ~ 9.2 min). Fixed buckets make the merge across
/// SearchBatch workers a plain element-wise sum — deterministic in
/// structure, no rebinning.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  void Record(std::uint64_t nanos);

  std::uint64_t count() const { return count_; }
  std::uint64_t total_nanos() const { return sum_nanos_; }
  std::uint64_t min_nanos() const { return count_ == 0 ? 0 : min_nanos_; }
  std::uint64_t max_nanos() const { return max_nanos_; }
  const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

  /// Upper edge (exclusive, in nanoseconds) of bucket `b`.
  static std::uint64_t BucketUpperNanos(std::size_t b);

  /// Estimated p-th percentile (p in [0, 100]): the upper edge of the
  /// bucket containing the p-th sample, clamped to the observed max.
  /// Returns 0 when empty.
  std::uint64_t PercentileNanos(double p) const;

  LatencyHistogram& operator+=(const LatencyHistogram& o);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_nanos_ = 0;
  std::uint64_t min_nanos_ = ~std::uint64_t{0};
  std::uint64_t max_nanos_ = 0;
};

/// H-Merge internals the flat per-stage view cannot express: how the wedge
/// hierarchy was walked and how dynamic K evolved (paper Section 4.1).
struct WedgeStats {
  /// Wedges popped off the H-Merge stack and tested with LB_Keogh.
  std::uint64_t wedges_tested = 0;
  /// Wedges whose whole rotation subtree was discarded by the bound.
  std::uint64_t wedges_pruned = 0;
  /// Surviving internal wedges whose children were pushed (descents).
  std::uint64_t wedges_descended = 0;
  /// Leaf wedges that reached an exact distance evaluation.
  std::uint64_t leaves_evaluated = 0;
  /// Leaf evaluations cut short by early abandoning (DTW leaves).
  std::uint64_t leaves_abandoned = 0;
  /// Dynamic-K re-probes executed (AdaptK calls that ran the probe loop).
  std::uint64_t adapt_probes = 0;
  /// K after each adaptation, in query order (capped at kMaxTrajectory;
  /// adapt_probes keeps the true count).
  std::vector<int> k_trajectory;

  static constexpr std::size_t kMaxTrajectory = 256;
  void RecordK(int k);
  WedgeStats& operator+=(const WedgeStats& o);
};

/// Disk-index accounting (RotationInvariantIndex): what was pruned in
/// signature space versus fetched and refined (paper Section 5.4 /
/// Figure 24).
struct IndexStats {
  /// Signature-space lower-bound evaluations (VP-tree metric calls or
  /// LB_PAA evaluations).
  std::uint64_t signature_evals = 0;
  /// Database objects never fetched from disk (pruned purely in signature
  /// space).
  std::uint64_t candidates_pruned = 0;
  std::uint64_t object_fetches = 0;
  std::uint64_t page_reads = 0;
  /// Fetched objects pushed through H-Merge refinement.
  std::uint64_t refinements = 0;

  IndexStats& operator+=(const IndexStats& o);
};

/// The per-query (or merged multi-query) metrics aggregate. Merging is
/// deterministic: SearchBatch accumulates per-query QueryMetrics in query
/// order, exactly like StepCounter, so an N-thread batch produces the same
/// merged counters as a serial run (wall_nanos and latency excepted — they
/// measure real time).
struct QueryMetrics {
  std::array<StageStats, kNumStages> stages{};
  WedgeStats wedge;
  IndexStats index;
  /// End-to-end per-query latency (one Record per query).
  LatencyHistogram latency;
  /// Queries merged into this aggregate.
  std::uint64_t queries = 0;

  StageStats& stage(StageId id) {
    return stages[static_cast<std::size_t>(id)];
  }
  const StageStats& stage(StageId id) const {
    return stages[static_cast<std::size_t>(id)];
  }

  /// Sum of per-stage steps + setup_steps: equals the legacy
  /// StepCounter::total_steps() of the same queries (exact attribution).
  std::uint64_t attributed_total_steps() const;

  QueryMetrics& operator+=(const QueryMetrics& o);

  /// Structured JSON object (stages, wedge, index, latency percentiles).
  /// `indent` is the number of leading spaces applied to every line.
  std::string ToJson(int indent = 0) const;
};

inline std::uint64_t NanosSince(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

/// Attributes the StepCounter delta and wall time of one scoped region to
/// one stage. A null `stats` makes construction and destruction no-ops, so
/// an uninstrumented path stays free of clock calls; the counter itself is
/// only read, never written, keeping instrumented results bit-identical.
class StageScope {
 public:
  StageScope(StageStats* stats, const StepCounter* counter)
      : stats_(stats), counter_(counter) {
    if (stats_ == nullptr) return;
    stats_->used = true;
    if (counter_ != nullptr) {
      steps0_ = counter_->steps;
      setup0_ = counter_->setup_steps;
      abandons0_ = counter_->early_abandons;
    }
    t0_ = std::chrono::steady_clock::now();
  }

  ~StageScope() {
    if (stats_ == nullptr) return;
    stats_->wall_nanos += NanosSince(t0_);
    if (counter_ != nullptr) {
      stats_->steps += counter_->steps - steps0_;
      stats_->setup_steps += counter_->setup_steps - setup0_;
      stats_->early_abandons += counter_->early_abandons - abandons0_;
    }
  }

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  StageStats* stats_;
  const StepCounter* counter_;
  std::uint64_t steps0_ = 0;
  std::uint64_t setup0_ = 0;
  std::uint64_t abandons0_ = 0;
  std::chrono::steady_clock::time_point t0_;
};

/// Records one end-to-end query latency sample (and bumps the query count)
/// on destruction. No-op for null metrics.
class QueryLatencyScope {
 public:
  explicit QueryLatencyScope(QueryMetrics* metrics) : metrics_(metrics) {
    if (metrics_ != nullptr) t0_ = std::chrono::steady_clock::now();
  }
  ~QueryLatencyScope() {
    if (metrics_ == nullptr) return;
    metrics_->latency.Record(NanosSince(t0_));
    ++metrics_->queries;
  }
  QueryLatencyScope(const QueryLatencyScope&) = delete;
  QueryLatencyScope& operator=(const QueryLatencyScope&) = delete;

 private:
  QueryMetrics* metrics_;
  std::chrono::steady_clock::time_point t0_;
};

/// Named collection of QueryMetrics (one entry per configuration / command),
/// preserving insertion order. The single JSON producer shared by
/// `rotind_cli --metrics-json` and bench/engine_scan_bench.
class MetricsRegistry {
 public:
  /// Insert-or-find by name.
  QueryMetrics& Get(const std::string& name);

  std::size_t size() const { return entries_.size(); }
  const std::vector<std::pair<std::string, QueryMetrics>>& entries() const {
    return entries_;
  }

  /// {"metrics": {"<name>": {...}, ...}}
  std::string ToJson() const;

  /// Writes ToJson() to `path`; kIoError on failure.
  [[nodiscard]] Status WriteJsonFile(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, QueryMetrics>> entries_;
};

}  // namespace rotind::obs

#endif  // ROTIND_OBS_METRICS_H_
