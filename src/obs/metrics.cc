#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "src/io/bytes.h"
#include "src/simd/simd.h"

namespace rotind::obs {
namespace {

/// Minimal JSON writer helpers. The obs layer emits only objects of
/// numbers, strings, and arrays of numbers; no escaping beyond the basics
/// is needed for the stage names it produces, but registry entry names are
/// caller-supplied, so escape them.
void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendKey(std::string* out, const std::string& pad, const char* key) {
  *out += pad;
  *out += '"';
  *out += key;
  *out += "\": ";
}

void AppendU64(std::string* out, const std::string& pad, const char* key,
               std::uint64_t value, bool comma) {
  AppendKey(out, pad, key);
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(value));
  *out += buf;
  *out += comma ? ",\n" : "\n";
}

}  // namespace

const char* StageName(StageId id) {
  switch (id) {
    case StageId::kFftFilter: return "fft_filter";
    case StageId::kWedge: return "wedge";
    case StageId::kExactScan: return "exact_scan";
    case StageId::kFullScan: return "full_scan";
    case StageId::kFullScanBanded: return "full_scan_banded";
    case StageId::kSignatureFilter: return "signature_filter";
    case StageId::kDiskFetch: return "disk_fetch";
    case StageId::kRefine: return "refine";
    case StageId::kLbImproved: return "lb_improved";
    case StageId::kVecSignature: return "vec_signature";
  }
  return "unknown";
}

StageStats& StageStats::operator+=(const StageStats& o) {
  candidates_entered += o.candidates_entered;
  candidates_pruned += o.candidates_pruned;
  candidates_survived += o.candidates_survived;
  steps += o.steps;
  setup_steps += o.setup_steps;
  early_abandons += o.early_abandons;
  wall_nanos += o.wall_nanos;
  pool_hits += o.pool_hits;
  pages_read += o.pages_read;
  pool_evictions += o.pool_evictions;
  io_bytes += o.io_bytes;
  io_retries += o.io_retries;
  io_faults_absorbed += o.io_faults_absorbed;
  used = used || o.used;
  return *this;
}

void LatencyHistogram::Record(std::uint64_t nanos) {
  // Bucket index = floor(log2(nanos)), with 0ns landing in bucket 0 and
  // everything past the top edge clamped into the last bucket.
  std::size_t b = 0;
  for (std::uint64_t v = nanos; v > 1 && b + 1 < kBuckets; v >>= 1) ++b;
  ++buckets_[b];
  ++count_;
  sum_nanos_ += nanos;
  min_nanos_ = std::min(min_nanos_, nanos);
  max_nanos_ = std::max(max_nanos_, nanos);
}

std::uint64_t LatencyHistogram::BucketUpperNanos(std::size_t b) {
  return std::uint64_t{1} << (b + 1);
}

std::uint64_t LatencyHistogram::PercentileNanos(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the percentile sample (1-based, nearest-rank definition).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(count_) +
                                    0.5));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank) {
      // The last bucket is unbounded (it absorbs every overflow sample),
      // so its nominal upper edge means nothing: report the observed max.
      if (b + 1 == kBuckets) return max_nanos_;
      return std::min(BucketUpperNanos(b), max_nanos_);
    }
  }
  return max_nanos_;
}

LatencyHistogram& LatencyHistogram::operator+=(const LatencyHistogram& o) {
  for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += o.buckets_[b];
  count_ += o.count_;
  sum_nanos_ += o.sum_nanos_;
  min_nanos_ = std::min(min_nanos_, o.min_nanos_);
  max_nanos_ = std::max(max_nanos_, o.max_nanos_);
  return *this;
}

void WedgeStats::RecordK(int k) {
  ++adapt_probes;
  if (k_trajectory.size() < kMaxTrajectory) k_trajectory.push_back(k);
}

WedgeStats& WedgeStats::operator+=(const WedgeStats& o) {
  wedges_tested += o.wedges_tested;
  wedges_pruned += o.wedges_pruned;
  wedges_descended += o.wedges_descended;
  leaves_evaluated += o.leaves_evaluated;
  leaves_abandoned += o.leaves_abandoned;
  adapt_probes += o.adapt_probes;
  for (int k : o.k_trajectory) {
    if (k_trajectory.size() >= kMaxTrajectory) break;
    k_trajectory.push_back(k);
  }
  return *this;
}

IndexStats& IndexStats::operator+=(const IndexStats& o) {
  signature_evals += o.signature_evals;
  candidates_pruned += o.candidates_pruned;
  object_fetches += o.object_fetches;
  page_reads += o.page_reads;
  refinements += o.refinements;
  return *this;
}

std::uint64_t QueryMetrics::attributed_total_steps() const {
  std::uint64_t total = 0;
  for (const StageStats& s : stages) total += s.total_steps();
  return total;
}

QueryMetrics& QueryMetrics::operator+=(const QueryMetrics& o) {
  for (std::size_t i = 0; i < kNumStages; ++i) stages[i] += o.stages[i];
  wedge += o.wedge;
  index += o.index;
  latency += o.latency;
  queries += o.queries;
  return *this;
}

std::string QueryMetrics::ToJson(int indent) const {
  const std::string pad(static_cast<std::size_t>(std::max(0, indent)), ' ');
  const std::string p1 = pad + "  ";
  const std::string p2 = pad + "    ";
  const std::string p3 = pad + "      ";
  std::string out;
  out += pad + "{\n";
  AppendU64(&out, p1, "queries", queries, true);
  AppendU64(&out, p1, "attributed_total_steps", attributed_total_steps(),
            true);

  out += p1 + "\"stages\": [\n";
  bool first = true;
  for (std::size_t i = 0; i < kNumStages; ++i) {
    const StageStats& s = stages[i];
    if (!s.used) continue;
    if (!first) out += ",\n";
    first = false;
    out += p2 + "{\n";
    AppendKey(&out, p3, "stage");
    out += '"';
    out += StageName(static_cast<StageId>(i));
    out += "\",\n";
    AppendU64(&out, p3, "candidates_entered", s.candidates_entered, true);
    AppendU64(&out, p3, "candidates_pruned", s.candidates_pruned, true);
    AppendU64(&out, p3, "candidates_survived", s.candidates_survived, true);
    AppendU64(&out, p3, "steps", s.steps, true);
    AppendU64(&out, p3, "setup_steps", s.setup_steps, true);
    AppendU64(&out, p3, "early_abandons", s.early_abandons, true);
    AppendU64(&out, p3, "wall_nanos", s.wall_nanos, s.has_io());
    // Storage I/O keys appear only when the stage did real I/O, so
    // in-memory runs (and the committed BENCH_scan baseline) keep their
    // exact JSON shape.
    if (s.has_io()) {
      AppendU64(&out, p3, "pool_hits", s.pool_hits, true);
      AppendU64(&out, p3, "pages_read", s.pages_read, true);
      AppendU64(&out, p3, "pool_evictions", s.pool_evictions, true);
      AppendU64(&out, p3, "io_bytes", s.io_bytes,
                (s.io_retries | s.io_faults_absorbed) != 0);
      // Retry keys appear only under storage faults: clean runs (including
      // the committed BENCH_scan baseline) keep their exact JSON shape.
      if ((s.io_retries | s.io_faults_absorbed) != 0) {
        AppendU64(&out, p3, "io_retries", s.io_retries, true);
        AppendU64(&out, p3, "io_faults_absorbed", s.io_faults_absorbed,
                  false);
      }
    }
    out += p2 + "}";
  }
  out += "\n" + p1 + "],\n";

  out += p1 + "\"wedge\": {\n";
  AppendU64(&out, p2, "wedges_tested", wedge.wedges_tested, true);
  AppendU64(&out, p2, "wedges_pruned", wedge.wedges_pruned, true);
  AppendU64(&out, p2, "wedges_descended", wedge.wedges_descended, true);
  AppendU64(&out, p2, "leaves_evaluated", wedge.leaves_evaluated, true);
  AppendU64(&out, p2, "leaves_abandoned", wedge.leaves_abandoned, true);
  AppendU64(&out, p2, "adapt_probes", wedge.adapt_probes, true);
  out += p2 + "\"k_trajectory\": [";
  for (std::size_t i = 0; i < wedge.k_trajectory.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(wedge.k_trajectory[i]);
  }
  out += "]\n";
  out += p1 + "},\n";

  out += p1 + "\"index\": {\n";
  AppendU64(&out, p2, "signature_evals", index.signature_evals, true);
  AppendU64(&out, p2, "candidates_pruned", index.candidates_pruned, true);
  AppendU64(&out, p2, "object_fetches", index.object_fetches, true);
  AppendU64(&out, p2, "page_reads", index.page_reads, true);
  AppendU64(&out, p2, "refinements", index.refinements, false);
  out += p1 + "},\n";

  out += p1 + "\"latency\": {\n";
  AppendU64(&out, p2, "count", latency.count(), true);
  AppendU64(&out, p2, "total_nanos", latency.total_nanos(), true);
  AppendU64(&out, p2, "min_nanos", latency.min_nanos(), true);
  AppendU64(&out, p2, "max_nanos", latency.max_nanos(), true);
  AppendU64(&out, p2, "p50_nanos", latency.PercentileNanos(50.0), true);
  AppendU64(&out, p2, "p95_nanos", latency.PercentileNanos(95.0), true);
  AppendU64(&out, p2, "p99_nanos", latency.PercentileNanos(99.0), false);
  out += p1 + "}\n";
  out += pad + "}";
  return out;
}

QueryMetrics& MetricsRegistry::Get(const std::string& name) {
  for (auto& [key, value] : entries_) {
    if (key == name) return value;
  }
  entries_.emplace_back(name, QueryMetrics{});
  return entries_.back().second;
}

std::string MetricsRegistry::ToJson() const {
  // The dispatched kernel tier makes every exported report self-describing:
  // two bench artifacts can only be compared apples-to-apples when both say
  // which tier produced them.
  std::string out = "{\n  \"simd\": \"";
  out += simd::ActiveTierName();
  out += "\",\n  \"metrics\": {\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    out += "    \"";
    AppendEscaped(&out, entries_[i].first);
    out += "\":\n";
    out += entries_[i].second.ToJson(4);
    out += i + 1 < entries_.size() ? ",\n" : "\n";
  }
  out += "  }\n}\n";
  return out;
}

Status MetricsRegistry::WriteJsonFile(const std::string& path) const {
  return WriteStringToFile(path, ToJson());
}

}  // namespace rotind::obs
