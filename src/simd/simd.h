#ifndef ROTIND_SIMD_SIMD_H_
#define ROTIND_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>

#include "src/core/status.h"

namespace rotind {
namespace simd {

/// The SIMD kernel layer: runtime-dispatched implementations of the hot
/// loops (LB_Keogh accumulation, the fused LB_Improved projection pass,
/// early-abandoning squared ED, envelope merge, DTW band row update), each
/// in a portable scalar tier and an AVX2 tier.
///
/// Exactness contract: every AVX2 kernel is BIT-IDENTICAL to its scalar
/// reference on the same inputs, including abandonment points (step
/// accounting). This is possible because no kernel reassociates a scalar
/// accumulation chain:
///  * the blocked ED kernels vectorize ACROSS candidates — each lane
///    accumulates its own candidate's terms in time order, exactly the
///    scalar per-candidate sum;
///  * LB_Keogh terms max(q-U, 0) + max(L-q, 0) are elementwise equal to
///    the branchy scalar terms (L <= U means at most one max is positive,
///    and adding a +0.0 term never changes a non-negative accumulator), so
///    the serial accumulate/check loop consumes vector-computed terms
///    without reordering;
///  * envelope merge and the DTW row's min/cost precompute are elementwise
///    (min/max operand order is chosen so ties return the same operand the
///    std::min/std::max reference returns);
///  * no FMA contraction: the AVX2 translation unit is built with
///    -ffp-contract=off and explicit mul+add intrinsics.
/// tests/simd_kernels_test.cc enforces the contract bit-for-bit across
/// tiers for every kernel, sweeping odd lengths and tails.
///
/// Layering: distance/envelope/search -> simd -> core (enforced by
/// rotind_lint), and intrinsics are forbidden outside src/simd/.

/// Candidates scored per blocked-kernel pass. Matches
/// FlatDataset::kTileLanes (static_assert'd at the call sites).
inline constexpr std::size_t kBlockLanes = 8;

/// Dispatch tiers, lowest to highest.
enum class Tier { kScalar, kAvx2 };

/// The dispatched kernel set. Function pointers, resolved once at startup:
/// indirect-call cost is noise against the O(n) loops behind each entry.
struct KernelTable {
  /// Early-abandoning squared LB_Keogh (paper Table 5) of series `s`
  /// against envelope [lower, upper]: accumulates (s_i-U_i)^2 / (s_i-L_i)^2
  /// for points outside the envelope, returning +infinity as soon as the
  /// accumulator exceeds `sq_limit` and the exact sum otherwise.
  /// `*examined` receives the number of points consumed (abandon index + 1,
  /// or n) — the caller's step charge. sq_limit = +infinity never abandons
  /// (the full-LB_Keogh case).
  double (*lb_keogh_sq)(const double* s, const double* upper,
                        const double* lower, std::size_t n, double sq_limit,
                        std::size_t* examined);

  /// LB_Improved pass 1: identical accumulation, abandonment, and return
  /// semantics to lb_keogh_sq (bit-for-bit, including *examined), fused
  /// with the envelope projection proj[i] = clamp(s_i, L_i, U_i) — U_i when
  /// s_i > U_i, L_i when s_i < L_i, s_i itself otherwise (ties keep s_i's
  /// bits, so a -0.0 point inside a +0.0 envelope stays -0.0). On return,
  /// proj[0 .. *examined) is valid; entries past an abandonment point are
  /// unspecified (the caller only reads proj when the pass survived).
  double (*lb_keogh_proj_sq)(const double* s, const double* upper,
                             const double* lower, double* proj, std::size_t n,
                             double sq_limit, std::size_t* examined);

  /// Full squared ED of one query rotation against kBlockLanes SoA-tiled
  /// candidates: out_sq[l] = sum_t (q[t] - tile[t*kBlockLanes + l])^2,
  /// accumulated in time order per lane. `tile` must be 64-byte aligned
  /// (FlatDataset::tile).
  void (*ed_block_full)(const double* q, const double* tile, std::size_t n,
                        double* out_sq);

  /// Early-abandoning squared ED against kBlockLanes SoA-tiled candidates
  /// with per-lane limits. Lane l abandons — out_sq[l] = +infinity, bit l
  /// of *abandoned set, lane_steps[l] = abandon index + 1 — as soon as its
  /// accumulator exceeds sq_limits[l] (checked after every element, like
  /// the scalar kernel); surviving lanes report the exact sum and n steps.
  void (*ed_block_ea)(const double* q, const double* tile, std::size_t n,
                      const double* sq_limits, double* out_sq,
                      std::uint64_t* lane_steps, unsigned* abandoned);

  /// Envelope merge (H-Merge): upper[i] = max(upper[i], other_upper[i]),
  /// lower[i] = min(lower[i], other_lower[i]).
  void (*env_merge)(double* upper, double* lower, const double* other_upper,
                    const double* other_lower, std::size_t n);

  /// Widen an envelope by one series: upper[i] = max(upper[i], s[i]),
  /// lower[i] = min(lower[i], s[i]).
  void (*env_merge_series)(double* upper, double* lower, const double* s,
                           std::size_t n);

  /// One row (i > 0) of the rolling-array Sakoe-Chiba band DP: for j in
  /// [j_lo, j_hi], curr[j] = min(prev[j], curr[j-1] if j>0,
  /// prev[j-1] if j>0) + (qi - c[j])^2. Returns the row minimum. `scratch`
  /// must hold at least j_hi + 1 doubles. Row 0 (the base case) stays with
  /// the caller.
  double (*dtw_row)(double qi, const double* c, const double* prev,
                    double* curr, std::size_t j_lo, std::size_t j_hi,
                    double* scratch);
};

/// Whether `tier` can run on this machine/build (kScalar always can).
[[nodiscard]] bool TierAvailable(Tier tier);

/// Parses a ROTIND_SIMD override value: "scalar" and "avx2" name tiers,
/// anything else is a typed kInvalidArgument naming the accepted values.
[[nodiscard]] StatusOr<Tier> TierFromName(const char* name);

/// Validates the ROTIND_SIMD environment override without resolving the
/// active tier: OK when the variable is unset or names a known tier, the
/// TierFromName error otherwise. The CLI calls this first thing in main()
/// and maps a failure to its usage-error exit code (2); library users who
/// skip it hit the same check fatally at first kernel dispatch.
[[nodiscard]] Status ValidateEnvOverride();

/// The tier selected once at first use: the best available, overridable
/// with ROTIND_SIMD=scalar|avx2 (an unavailable request degrades to
/// scalar; ActiveTierName() reports what actually runs). An unknown
/// ROTIND_SIMD value is a hard startup error (stderr + abort), never a
/// silent fallback — validate early with ValidateEnvOverride().
[[nodiscard]] Tier ActiveTier();

/// Stable lowercase tier name ("scalar", "avx2") for logs and bench JSON.
[[nodiscard]] const char* TierName(Tier tier);
[[nodiscard]] const char* ActiveTierName();

/// The kernel table for ActiveTier().
[[nodiscard]] const KernelTable& Kernels();

/// The kernel table for an explicit tier (parity tests). Requesting an
/// unavailable tier returns the scalar table.
[[nodiscard]] const KernelTable& KernelsFor(Tier tier);

}  // namespace simd
}  // namespace rotind

#endif  // ROTIND_SIMD_SIMD_H_
