#include "src/simd/kernels_internal.h"

#if defined(ROTIND_HAVE_AVX2_KERNELS)

#include <immintrin.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "src/core/aligned.h"

// AVX2 tier. Built with -mavx2 -ffp-contract=off and ONLY explicit
// mul+add intrinsics (never FMA), so every arithmetic op rounds exactly
// like its scalar counterpart. Bit-parity rules used throughout:
//
//  * Accumulation chains are never reassociated: blocked ED keeps one
//    accumulator per candidate lane fed in time order, and LB_Keogh
//    vector-computes per-element terms but consumes them with the same
//    serial accumulate-and-check loop as scalar.
//  * min/max tie order: std::max(a, b) returns its FIRST argument on a
//    tie (a < b ? b : a), while vmaxpd/vminpd return the SECOND source
//    operand. Wherever a tie could be -0.0 vs +0.0 (envelope merge), the
//    scalar first argument is therefore passed as the intrinsic's second
//    operand. DTW cell values are sums of squares (>= +0.0 or +inf), where
//    equal values have equal bits, so min order there is unconstrained.
//  * Comparisons use the ordered-quiet predicates, matching the scalar
//    `a > b` / `a != b` semantics on NaN.

namespace rotind {
namespace simd {
namespace internal {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double LbKeoghSqAvx2(const double* s, const double* upper, const double* lower,
                     std::size_t n, double sq_limit, std::size_t* examined) {
  // Scalar checks `acc > sq_limit` after EVERY element, so a negative
  // limit abandons at index 0 even when the first term is zero. Fold that
  // case out so the all-inside fast path below can skip whole blocks.
  if (n > 0 && sq_limit < 0.0) {
    *examined = 1;
    return kInf;
  }
  const __m256d zero = _mm256_setzero_pd();
  double acc = 0.0;
  std::size_t i = 0;
  alignas(kSimdAlignment) double terms[8];
  for (; i + 8 <= n; i += 8) {
    const __m256d s0 = _mm256_loadu_pd(s + i);
    const __m256d s1 = _mm256_loadu_pd(s + i + 4);
    const __m256d u0 = _mm256_loadu_pd(upper + i);
    const __m256d u1 = _mm256_loadu_pd(upper + i + 4);
    const __m256d l0 = _mm256_loadu_pd(lower + i);
    const __m256d l1 = _mm256_loadu_pd(lower + i + 4);
    // d = max(s-U, 0) + max(L-s, 0). With L <= U at most one addend is
    // positive, so d equals the branchy scalar excess exactly (the +0.0
    // addend is absorbed; vmaxpd's tie-returns-second yields +0.0 for a
    // -0.0 difference, which still adds as +0.0).
    const __m256d d0 = _mm256_add_pd(
        _mm256_max_pd(_mm256_sub_pd(s0, u0), zero),
        _mm256_max_pd(_mm256_sub_pd(l0, s0), zero));
    const __m256d d1 = _mm256_add_pd(
        _mm256_max_pd(_mm256_sub_pd(s1, u1), zero),
        _mm256_max_pd(_mm256_sub_pd(l1, s1), zero));
    const int nz = _mm256_movemask_pd(_mm256_cmp_pd(d0, zero, _CMP_NEQ_OQ)) |
                   _mm256_movemask_pd(_mm256_cmp_pd(d1, zero, _CMP_NEQ_OQ));
    if (nz == 0) {
      // Whole block inside the envelope: acc is unchanged and already
      // <= sq_limit (we did not abandon last element), so all eight
      // scalar checks are false. Common case on surviving candidates.
      continue;
    }
    _mm256_store_pd(terms, _mm256_mul_pd(d0, d0));
    _mm256_store_pd(terms + 4, _mm256_mul_pd(d1, d1));
    // Same serial accumulate/check as scalar: zero terms leave a
    // non-negative acc bit-unchanged, positive terms match the branchy
    // d*d exactly.
    for (std::size_t k = 0; k < 8; ++k) {
      acc += terms[k];
      if (acc > sq_limit) {
        *examined = i + k + 1;
        return kInf;
      }
    }
  }
  for (; i < n; ++i) {
    if (s[i] > upper[i]) {
      const double d = s[i] - upper[i];
      acc += d * d;
    } else if (s[i] < lower[i]) {
      const double d = s[i] - lower[i];
      acc += d * d;
    }
    if (acc > sq_limit) {
      *examined = i + 1;
      return kInf;
    }
  }
  *examined = n;
  return acc;
}

double LbKeoghProjSqAvx2(const double* s, const double* upper,
                         const double* lower, double* proj, std::size_t n,
                         double sq_limit, std::size_t* examined) {
  if (n > 0 && sq_limit < 0.0) {
    // The scalar loop clamps the first point before noticing the limit is
    // unmeetable; the examined prefix of proj must match bit-for-bit.
    proj[0] = s[0] > upper[0]   ? upper[0]
              : s[0] < lower[0] ? lower[0]
                                : s[0];
    *examined = 1;
    return kInf;
  }
  const __m256d zero = _mm256_setzero_pd();
  double acc = 0.0;
  std::size_t i = 0;
  alignas(kSimdAlignment) double terms[8];
  for (; i + 8 <= n; i += 8) {
    const __m256d s0 = _mm256_loadu_pd(s + i);
    const __m256d s1 = _mm256_loadu_pd(s + i + 4);
    const __m256d u0 = _mm256_loadu_pd(upper + i);
    const __m256d u1 = _mm256_loadu_pd(upper + i + 4);
    const __m256d l0 = _mm256_loadu_pd(lower + i);
    const __m256d l1 = _mm256_loadu_pd(lower + i + 4);
    // clamp = min(U, max(L, s)). The scalar branches return s's own bits
    // whenever s is inside (including s == U or s == L with mixed zero
    // signs), so s rides the tie-returns-second lane of both intrinsics:
    // max(L, s) keeps s on a tie, min(U, .) keeps the max result on a tie.
    _mm256_storeu_pd(proj + i, _mm256_min_pd(u0, _mm256_max_pd(l0, s0)));
    _mm256_storeu_pd(proj + i + 4,
                     _mm256_min_pd(u1, _mm256_max_pd(l1, s1)));
    const __m256d d0 = _mm256_add_pd(
        _mm256_max_pd(_mm256_sub_pd(s0, u0), zero),
        _mm256_max_pd(_mm256_sub_pd(l0, s0), zero));
    const __m256d d1 = _mm256_add_pd(
        _mm256_max_pd(_mm256_sub_pd(s1, u1), zero),
        _mm256_max_pd(_mm256_sub_pd(l1, s1), zero));
    const int nz = _mm256_movemask_pd(_mm256_cmp_pd(d0, zero, _CMP_NEQ_OQ)) |
                   _mm256_movemask_pd(_mm256_cmp_pd(d1, zero, _CMP_NEQ_OQ));
    if (nz == 0) continue;  // whole block inside: acc unchanged, no checks
    _mm256_store_pd(terms, _mm256_mul_pd(d0, d0));
    _mm256_store_pd(terms + 4, _mm256_mul_pd(d1, d1));
    for (std::size_t k = 0; k < 8; ++k) {
      acc += terms[k];
      if (acc > sq_limit) {
        // proj is written through the block end — more than the examined
        // prefix the contract promises, which is allowed (unspecified).
        *examined = i + k + 1;
        return kInf;
      }
    }
  }
  for (; i < n; ++i) {
    if (s[i] > upper[i]) {
      const double d = s[i] - upper[i];
      acc += d * d;
      proj[i] = upper[i];
    } else if (s[i] < lower[i]) {
      const double d = s[i] - lower[i];
      acc += d * d;
      proj[i] = lower[i];
    } else {
      proj[i] = s[i];
    }
    if (acc > sq_limit) {
      *examined = i + 1;
      return kInf;
    }
  }
  *examined = n;
  return acc;
}

void EdBlockFullAvx2(const double* q, const double* tile, std::size_t n,
                     double* out_sq) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  for (std::size_t t = 0; t < n; ++t) {
    const __m256d qv = _mm256_broadcast_sd(q + t);
    // Tile rows are t * kBlockLanes doubles in = t * 64 bytes: every row
    // starts on a fresh cache line, so aligned loads are safe.
    const __m256d c0 = _mm256_load_pd(tile + t * kBlockLanes);
    const __m256d c1 = _mm256_load_pd(tile + t * kBlockLanes + 4);
    const __m256d d0 = _mm256_sub_pd(qv, c0);
    const __m256d d1 = _mm256_sub_pd(qv, c1);
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d0, d0));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(d1, d1));
  }
  _mm256_storeu_pd(out_sq, acc0);
  _mm256_storeu_pd(out_sq + 4, acc1);
}

void EdBlockEaAvx2(const double* q, const double* tile, std::size_t n,
                   const double* sq_limits, double* out_sq,
                   std::uint64_t* lane_steps, unsigned* abandoned) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  const __m256d lim0 = _mm256_loadu_pd(sq_limits);
  const __m256d lim1 = _mm256_loadu_pd(sq_limits + 4);
  unsigned active = 0xFFu;
  *abandoned = 0;
  for (std::size_t t = 0; t < n; ++t) {
    const __m256d qv = _mm256_broadcast_sd(q + t);
    const __m256d c0 = _mm256_load_pd(tile + t * kBlockLanes);
    const __m256d c1 = _mm256_load_pd(tile + t * kBlockLanes + 4);
    const __m256d d0 = _mm256_sub_pd(qv, c0);
    const __m256d d1 = _mm256_sub_pd(qv, c1);
    // Abandoned lanes keep accumulating garbage; their outputs were
    // already pinned to +inf when they left `active`, so freezing them
    // would cost a blend for nothing.
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d0, d0));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(d1, d1));
    const unsigned over =
        static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_cmp_pd(acc0, lim0, _CMP_GT_OQ))) |
        (static_cast<unsigned>(
             _mm256_movemask_pd(_mm256_cmp_pd(acc1, lim1, _CMP_GT_OQ)))
         << 4);
    const unsigned newly = over & active;
    if (newly != 0) {
      for (std::size_t l = 0; l < kBlockLanes; ++l) {
        if ((newly >> l) & 1u) {
          out_sq[l] = kInf;
          lane_steps[l] = t + 1;
        }
      }
      *abandoned |= newly;
      active &= ~newly;
      if (active == 0) return;
    }
  }
  alignas(kSimdAlignment) double sums[8];
  _mm256_store_pd(sums, acc0);
  _mm256_store_pd(sums + 4, acc1);
  for (std::size_t l = 0; l < kBlockLanes; ++l) {
    if ((active >> l) & 1u) {
      out_sq[l] = sums[l];
      lane_steps[l] = n;
    }
  }
}

void EnvMergeAvx2(double* upper, double* lower, const double* other_upper,
                  const double* other_lower, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d u = _mm256_loadu_pd(upper + i);
    const __m256d ou = _mm256_loadu_pd(other_upper + i);
    const __m256d l = _mm256_loadu_pd(lower + i);
    const __m256d ol = _mm256_loadu_pd(other_lower + i);
    // Existing operand second: vmaxpd/vminpd return the second source on
    // a tie, matching std::max/std::min returning their first argument.
    _mm256_storeu_pd(upper + i, _mm256_max_pd(ou, u));
    _mm256_storeu_pd(lower + i, _mm256_min_pd(ol, l));
  }
  for (; i < n; ++i) {
    upper[i] = std::max(upper[i], other_upper[i]);
    lower[i] = std::min(lower[i], other_lower[i]);
  }
}

void EnvMergeSeriesAvx2(double* upper, double* lower, const double* s,
                        std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d u = _mm256_loadu_pd(upper + i);
    const __m256d l = _mm256_loadu_pd(lower + i);
    const __m256d sv = _mm256_loadu_pd(s + i);
    _mm256_storeu_pd(upper + i, _mm256_max_pd(sv, u));
    _mm256_storeu_pd(lower + i, _mm256_min_pd(sv, l));
  }
  for (; i < n; ++i) {
    upper[i] = std::max(upper[i], s[i]);
    lower[i] = std::min(lower[i], s[i]);
  }
}

double DtwRowAvx2(double qi, const double* c, const double* prev, double* curr,
                  std::size_t j_lo, std::size_t j_hi, double* scratch) {
  double row_min = kInf;
  std::size_t j = j_lo;
  if (j_lo == 0) {
    // Column 0 has no left/diagonal neighbor inside the row.
    const double d = qi - c[0];
    curr[0] = prev[0] + d * d;
    row_min = std::min(row_min, curr[0]);
    j = 1;
  }
  if (j > j_hi) return row_min;
  // Pass 1 (vector): scratch[j] = min(prev[j], prev[j-1]) and
  // curr[j] = (qi - c[j])^2 — both elementwise, no cross-cell chain.
  std::size_t v = j;
  const __m256d qv = _mm256_broadcast_sd(&qi);
  for (; v + 4 <= j_hi + 1; v += 4) {
    const __m256d p = _mm256_loadu_pd(prev + v);
    const __m256d pm1 = _mm256_loadu_pd(prev + v - 1);
    _mm256_storeu_pd(scratch + v, _mm256_min_pd(pm1, p));
    const __m256d d = _mm256_sub_pd(qv, _mm256_loadu_pd(c + v));
    _mm256_storeu_pd(curr + v, _mm256_mul_pd(d, d));
  }
  for (; v <= j_hi; ++v) {
    scratch[v] = std::min(prev[v], prev[v - 1]);
    const double d = qi - c[v];
    curr[v] = d * d;
  }
  // Pass 2 (serial, carries curr[j-1]): cell values are sums of squares
  // (>= +0.0 or +inf), where equal doubles have equal bits, so taking
  // min(prev[j], prev[j-1]) before min(..., curr[j-1]) instead of the
  // scalar order is bit-identical.
  for (; j <= j_hi; ++j) {
    const double cost = curr[j];
    const double best = std::min(scratch[j], curr[j - 1]);
    curr[j] = best + cost;
    row_min = std::min(row_min, curr[j]);
  }
  return row_min;
}

}  // namespace

const KernelTable& Avx2Table() {
  static const KernelTable table = {
      &LbKeoghSqAvx2,  &LbKeoghProjSqAvx2,  &EdBlockFullAvx2,
      &EdBlockEaAvx2,  &EnvMergeAvx2,       &EnvMergeSeriesAvx2,
      &DtwRowAvx2,
  };
  return table;
}

}  // namespace internal
}  // namespace simd
}  // namespace rotind

#endif  // ROTIND_HAVE_AVX2_KERNELS
