#ifndef ROTIND_SIMD_KERNELS_INTERNAL_H_
#define ROTIND_SIMD_KERNELS_INTERNAL_H_

#include "src/simd/simd.h"

namespace rotind {
namespace simd {
namespace internal {

/// Per-tier kernel tables. The scalar table is the reference semantics;
/// the AVX2 table exists only in builds that compile the -mavx2 TU
/// (ROTIND_HAVE_AVX2_KERNELS) and is bit-identical to scalar by contract.
const KernelTable& ScalarTable();

#if defined(ROTIND_HAVE_AVX2_KERNELS)
const KernelTable& Avx2Table();
#endif

}  // namespace internal
}  // namespace simd
}  // namespace rotind

#endif  // ROTIND_SIMD_KERNELS_INTERNAL_H_
