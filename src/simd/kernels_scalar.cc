#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "src/simd/kernels_internal.h"

// Portable reference tier. These loops ARE the semantics: every other tier
// must match them bit-for-bit, including where abandonment fires. They
// mirror the scalar kernels that used to live inline in
// src/envelope/lower_bound.cc, src/distance/euclidean.cc,
// src/envelope/envelope.cc, and src/distance/dtw.cc — keep the accumulation
// and comparison order exactly as written.

namespace rotind {
namespace simd {
namespace internal {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double LbKeoghSqScalar(const double* s, const double* upper,
                       const double* lower, std::size_t n, double sq_limit,
                       std::size_t* examined) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (s[i] > upper[i]) {
      const double d = s[i] - upper[i];
      acc += d * d;
    } else if (s[i] < lower[i]) {
      const double d = s[i] - lower[i];
      acc += d * d;
    }
    if (acc > sq_limit) {
      *examined = i + 1;
      return kInf;
    }
  }
  *examined = n;
  return acc;
}

double LbKeoghProjSqScalar(const double* s, const double* upper,
                           const double* lower, double* proj, std::size_t n,
                           double sq_limit, std::size_t* examined) {
  // LbKeoghSqScalar with the clamp fused in: the accumulator, comparison
  // order, and abandonment points are IDENTICAL — only the proj[] stores
  // are new. Keep the two loops in lockstep.
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (s[i] > upper[i]) {
      const double d = s[i] - upper[i];
      acc += d * d;
      proj[i] = upper[i];
    } else if (s[i] < lower[i]) {
      const double d = s[i] - lower[i];
      acc += d * d;
      proj[i] = lower[i];
    } else {
      proj[i] = s[i];
    }
    if (acc > sq_limit) {
      *examined = i + 1;
      return kInf;
    }
  }
  *examined = n;
  return acc;
}

void EdBlockFullScalar(const double* q, const double* tile, std::size_t n,
                       double* out_sq) {
  for (std::size_t l = 0; l < kBlockLanes; ++l) out_sq[l] = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    const double* row = tile + t * kBlockLanes;
    const double qt = q[t];
    for (std::size_t l = 0; l < kBlockLanes; ++l) {
      const double d = qt - row[l];
      out_sq[l] += d * d;
    }
  }
}

void EdBlockEaScalar(const double* q, const double* tile, std::size_t n,
                     const double* sq_limits, double* out_sq,
                     std::uint64_t* lane_steps, unsigned* abandoned) {
  double acc[kBlockLanes];
  bool active[kBlockLanes];
  for (std::size_t l = 0; l < kBlockLanes; ++l) {
    acc[l] = 0.0;
    active[l] = true;
  }
  *abandoned = 0;
  for (std::size_t t = 0; t < n; ++t) {
    const double* row = tile + t * kBlockLanes;
    const double qt = q[t];
    for (std::size_t l = 0; l < kBlockLanes; ++l) {
      if (!active[l]) continue;
      const double d = qt - row[l];
      acc[l] += d * d;
      if (acc[l] > sq_limits[l]) {
        active[l] = false;
        out_sq[l] = kInf;
        lane_steps[l] = t + 1;
        *abandoned |= 1u << l;
      }
    }
  }
  for (std::size_t l = 0; l < kBlockLanes; ++l) {
    if (active[l]) {
      out_sq[l] = acc[l];
      lane_steps[l] = n;
    }
  }
}

void EnvMergeScalar(double* upper, double* lower, const double* other_upper,
                    const double* other_lower, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    upper[i] = std::max(upper[i], other_upper[i]);
    lower[i] = std::min(lower[i], other_lower[i]);
  }
}

void EnvMergeSeriesScalar(double* upper, double* lower, const double* s,
                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    upper[i] = std::max(upper[i], s[i]);
    lower[i] = std::min(lower[i], s[i]);
  }
}

double DtwRowScalar(double qi, const double* c, const double* prev,
                    double* curr, std::size_t j_lo, std::size_t j_hi,
                    double* scratch) {
  static_cast<void>(scratch);
  double row_min = kInf;
  for (std::size_t j = j_lo; j <= j_hi; ++j) {
    const double d = qi - c[j];
    const double cost = d * d;
    double best = prev[j];
    if (j > 0) {
      best = std::min(best, curr[j - 1]);
      best = std::min(best, prev[j - 1]);
    }
    curr[j] = best + cost;
    row_min = std::min(row_min, curr[j]);
  }
  return row_min;
}

}  // namespace

const KernelTable& ScalarTable() {
  static const KernelTable table = {
      &LbKeoghSqScalar,   &LbKeoghProjSqScalar,  &EdBlockFullScalar,
      &EdBlockEaScalar,   &EnvMergeScalar,       &EnvMergeSeriesScalar,
      &DtwRowScalar,
  };
  return table;
}

}  // namespace internal
}  // namespace simd
}  // namespace rotind
