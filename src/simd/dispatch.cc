#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/simd/kernels_internal.h"

namespace rotind {
namespace simd {
namespace {

Tier Resolve() {
  if (const char* env = std::getenv("ROTIND_SIMD")) {
    StatusOr<Tier> tier = TierFromName(env);
    if (!tier.ok()) {
      // An unknown override is misconfiguration, not a tuning preference:
      // silently auto-detecting would run a different kernel set than the
      // operator asked for and skew any benchmark built on the override.
      // The CLI validates earlier (ValidateEnvOverride -> exit 2); a
      // library embedder who skipped that check fails fast here.
      std::fprintf(stderr, "fatal: %s\n", tier.status().ToString().c_str());
      std::fflush(stderr);
      std::abort();
    }
    if (*tier == Tier::kAvx2) {
      return TierAvailable(Tier::kAvx2) ? Tier::kAvx2 : Tier::kScalar;
    }
    return *tier;
  }
  return TierAvailable(Tier::kAvx2) ? Tier::kAvx2 : Tier::kScalar;
}

}  // namespace

StatusOr<Tier> TierFromName(const char* name) {
  if (name != nullptr) {
    if (std::strcmp(name, "scalar") == 0) return Tier::kScalar;
    if (std::strcmp(name, "avx2") == 0) return Tier::kAvx2;
  }
  return Status::InvalidArgument(
      "unknown ROTIND_SIMD value \"" + std::string(name ? name : "") +
      "\"; valid values are \"scalar\" and \"avx2\"");
}

Status ValidateEnvOverride() {
  if (const char* env = std::getenv("ROTIND_SIMD")) {
    StatusOr<Tier> tier = TierFromName(env);
    if (!tier.ok()) return tier.status();
  }
  return Status::Ok();
}

bool TierAvailable(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
#if defined(ROTIND_HAVE_AVX2_KERNELS)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

Tier ActiveTier() {
  static const Tier tier = Resolve();
  return tier;
}

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
  }
  return "scalar";
}

const char* ActiveTierName() { return TierName(ActiveTier()); }

const KernelTable& KernelsFor(Tier tier) {
#if defined(ROTIND_HAVE_AVX2_KERNELS)
  if (tier == Tier::kAvx2 && TierAvailable(Tier::kAvx2)) {
    return internal::Avx2Table();
  }
#else
  static_cast<void>(tier);
#endif
  return internal::ScalarTable();
}

const KernelTable& Kernels() {
  static const KernelTable& table = KernelsFor(ActiveTier());
  return table;
}

}  // namespace simd
}  // namespace rotind
