#include <cstdlib>
#include <cstring>

#include "src/simd/kernels_internal.h"

namespace rotind {
namespace simd {
namespace {

Tier Resolve() {
  if (const char* env = std::getenv("ROTIND_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) return Tier::kScalar;
    if (std::strcmp(env, "avx2") == 0) {
      return TierAvailable(Tier::kAvx2) ? Tier::kAvx2 : Tier::kScalar;
    }
    // Unknown value: ignore and auto-detect rather than abort — the
    // override is a tuning knob, not configuration.
  }
  return TierAvailable(Tier::kAvx2) ? Tier::kAvx2 : Tier::kScalar;
}

}  // namespace

bool TierAvailable(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
#if defined(ROTIND_HAVE_AVX2_KERNELS)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

Tier ActiveTier() {
  static const Tier tier = Resolve();
  return tier;
}

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
  }
  return "scalar";
}

const char* ActiveTierName() { return TierName(ActiveTier()); }

const KernelTable& KernelsFor(Tier tier) {
#if defined(ROTIND_HAVE_AVX2_KERNELS)
  if (tier == Tier::kAvx2 && TierAvailable(Tier::kAvx2)) {
    return internal::Avx2Table();
  }
#else
  static_cast<void>(tier);
#endif
  return internal::ScalarTable();
}

const KernelTable& Kernels() {
  static const KernelTable& table = KernelsFor(ActiveTier());
  return table;
}

}  // namespace simd
}  // namespace rotind
