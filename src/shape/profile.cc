#include "src/shape/profile.h"

#include <cmath>

namespace rotind {

Series CentroidProfile(const std::vector<Pixel>& boundary) {
  if (boundary.empty()) return {};
  double cx = 0.0;
  double cy = 0.0;
  for (const Pixel& p : boundary) {
    cx += p.x;
    cy += p.y;
  }
  cx /= static_cast<double>(boundary.size());
  cy /= static_cast<double>(boundary.size());

  Series out(boundary.size());
  for (std::size_t i = 0; i < boundary.size(); ++i) {
    const double dx = boundary[i].x - cx;
    const double dy = boundary[i].y - cy;
    out[i] = std::sqrt(dx * dx + dy * dy);
  }
  return out;
}

Series ResampleByArcLength(const std::vector<Pixel>& boundary,
                           const Series& profile, std::size_t n) {
  const std::size_t m = boundary.size();
  if (m == 0 || n == 0 || profile.size() != m) return {};
  if (m == 1) return Series(n, profile[0]);

  // Cumulative arc length at each boundary vertex (closing segment wraps).
  std::vector<double> cum(m + 1, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const Pixel& a = boundary[i];
    const Pixel& b = boundary[(i + 1) % m];
    const double dx = a.x - b.x;
    const double dy = a.y - b.y;
    cum[i + 1] = cum[i] + std::sqrt(dx * dx + dy * dy);
  }
  const double total = cum[m];
  if (total <= 0.0) return Series(n, profile[0]);

  Series out(n);
  std::size_t seg = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const double target = total * static_cast<double>(j) /
                          static_cast<double>(n);
    while (seg + 1 < m && cum[seg + 1] <= target) ++seg;
    const double seg_len = cum[seg + 1] - cum[seg];
    const double t = seg_len > 0 ? (target - cum[seg]) / seg_len : 0.0;
    const double v0 = profile[seg];
    const double v1 = profile[(seg + 1) % m];
    out[j] = v0 * (1.0 - t) + v1 * t;
  }
  return out;
}

Series ShapeToSeries(const Bitmap& bitmap, std::size_t n) {
  const std::vector<Pixel> boundary = TraceBoundary(bitmap);
  if (boundary.size() < 3) return {};
  const Series profile = CentroidProfile(boundary);
  Series out = ResampleByArcLength(boundary, profile, n);
  ZNormalize(&out);
  return out;
}

}  // namespace rotind
