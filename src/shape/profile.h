#ifndef ROTIND_SHAPE_PROFILE_H_
#define ROTIND_SHAPE_PROFILE_H_

#include <cstddef>
#include <vector>

#include "src/core/series.h"
#include "src/shape/bitmap.h"
#include "src/shape/contour.h"

namespace rotind {

/// Converts shapes to time series (paper Figure 2): the distance from every
/// point on the traced profile to the shape's centre, walked in boundary
/// order, becomes the series. A rotation of the 2-D shape is then a
/// circular shift of the series.

/// Raw centroid-distance profile of an ordered boundary (one value per
/// boundary pixel, centre = centroid of the boundary points).
Series CentroidProfile(const std::vector<Pixel>& boundary);

/// Resamples a profile to `n` points at equal arc-length spacing along the
/// boundary (diagonal pixel steps are sqrt(2) long, so index-based
/// resampling would distort the angular speed).
Series ResampleByArcLength(const std::vector<Pixel>& boundary,
                           const Series& profile, std::size_t n);

/// Full pipeline: bitmap -> largest-component boundary -> centroid-distance
/// profile -> arc-length resampling to n -> z-normalisation. Returns an
/// empty series when the bitmap has no usable boundary. This is the shape
/// representation used everywhere in the library; scale invariance comes
/// from z-normalisation, offset invariance from the centroid, and rotation
/// becomes a circular shift handled by the search machinery.
Series ShapeToSeries(const Bitmap& bitmap, std::size_t n);

}  // namespace rotind

#endif  // ROTIND_SHAPE_PROFILE_H_
