#ifndef ROTIND_SHAPE_GENERATE_H_
#define ROTIND_SHAPE_GENERATE_H_

#include <cstddef>
#include <vector>

#include "src/core/random.h"
#include "src/core/series.h"
#include "src/shape/bitmap.h"

namespace rotind {

/// Parametric shape generators. The paper evaluates on image datasets we do
/// not have (skulls, leaves, faces, projectile points, ...); these
/// generators produce the synthetic equivalents documented in DESIGN.md:
/// star-convex shapes defined by a truncated Fourier radius function
///
///   r(theta) = base + sum_k a_k * cos(k*theta + phi_k),
///
/// whose centroid-distance profile is exactly the kind of 1-D series the
/// real datasets produce, with class structure (shared template), intra-
/// class variation (jitter/noise), rotation (circular shift), articulation
/// (local time warping), and chirality (mirror) all independently
/// controllable.
struct RadialShapeSpec {
  double base_radius = 1.0;
  std::vector<double> amplitudes;  ///< a_k for k = 1..H
  std::vector<double> phases;      ///< phi_k for k = 1..H

  std::size_t harmonics() const { return amplitudes.size(); }
};

/// Samples r(theta) at n uniform angles (the analytic profile; fast path
/// that skips rasterisation).
Series RadialProfile(const RadialShapeSpec& spec, std::size_t n);

/// The closed polygon (x, y) = r(theta) * (cos theta, sin theta).
std::vector<Point2> RadialPolygon(const RadialShapeSpec& spec,
                                  std::size_t points);

/// A random shape template: amplitudes a_k ~ N(0, amp_scale / k^decay),
/// random phases. `decay` > 1 yields smooth organic outlines; lower decay
/// yields spikier shapes.
RadialShapeSpec RandomShapeSpec(Rng* rng, std::size_t harmonics,
                                double amp_scale = 0.25, double decay = 1.3);

/// An intra-class variant: per-harmonic amplitude and phase jitter.
RadialShapeSpec PerturbSpec(const RadialShapeSpec& spec, Rng* rng,
                            double amplitude_jitter, double phase_jitter);

/// Adds i.i.d. Gaussian noise.
Series AddNoise(const Series& s, Rng* rng, double sigma);

/// Smooth circular time warping: resamples `s` at positions
/// i + w(i) where w is a smooth periodic displacement of up to
/// `strength` * n samples. Models articulation / feature-proportion
/// differences (paper Figure 11: homologous features at shifted locations)
/// — the distortion DTW recovers from and Euclidean distance cannot.
Series SmoothTimeWarp(const Series& s, Rng* rng, double strength);

/// Named shape families used by the examples and the clustering
/// sanity-check benches (stand-ins for the paper's figures).

/// Elongated, pointed outline: a projectile-point / arrowhead analogue.
RadialShapeSpec ProjectilePointSpec(Rng* rng);

/// Rounded cranium with jaw protrusion: a skull-profile analogue.
RadialShapeSpec SkullSpec(Rng* rng, double jaw, double cranium);

/// Four-lobed outline: a butterfly/moth analogue with controllable wing
/// asymmetry (nonzero asymmetry makes the shape chiral, exercising mirror
/// invariance).
RadialShapeSpec ButterflySpec(Rng* rng, double asymmetry);

/// A chiral "6"-like spec: distinguishable from its mirror/rotations only
/// by handedness plus orientation (drives the rotation-limited example).
RadialShapeSpec DigitSixSpec();

}  // namespace rotind

#endif  // ROTIND_SHAPE_GENERATE_H_
