#include "src/shape/contour.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace rotind {
namespace {

/// Clockwise Moore neighbourhood starting at West (image coords, y down).
constexpr int kDx[8] = {-1, -1, 0, 1, 1, 1, 0, -1};
constexpr int kDy[8] = {0, -1, -1, -1, 0, 1, 1, 1};

/// Flood-fills 8-connected components and returns a mask containing only
/// the largest one, so noise specks cannot hijack the trace.
Bitmap LargestComponentMask(const Bitmap& bitmap) {
  const int w = bitmap.width();
  const int h = bitmap.height();
  std::vector<int> component(static_cast<std::size_t>(w) * h, -1);
  int best_component = -1;
  std::size_t best_size = 0;
  int next_id = 0;

  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (!bitmap.at(x, y) ||
          component[static_cast<std::size_t>(y) * w + x] >= 0) {
        continue;
      }
      std::size_t size = 0;
      std::queue<Pixel> frontier;
      frontier.push({x, y});
      component[static_cast<std::size_t>(y) * w + x] = next_id;
      while (!frontier.empty()) {
        const Pixel p = frontier.front();
        frontier.pop();
        ++size;
        for (int d = 0; d < 8; ++d) {
          const int nx = p.x + kDx[d];
          const int ny = p.y + kDy[d];
          if (nx < 0 || ny < 0 || nx >= w || ny >= h) continue;
          if (!bitmap.at(nx, ny)) continue;
          int& c = component[static_cast<std::size_t>(ny) * w + nx];
          if (c < 0) {
            c = next_id;
            frontier.push({nx, ny});
          }
        }
      }
      if (size > best_size) {
        best_size = size;
        best_component = next_id;
      }
      ++next_id;
    }
  }

  Bitmap mask(w, h);
  if (best_component < 0) return mask;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (component[static_cast<std::size_t>(y) * w + x] == best_component) {
        mask.set(x, y, true);
      }
    }
  }
  return mask;
}

}  // namespace

std::vector<Pixel> TraceBoundary(const Bitmap& bitmap) {
  const Bitmap mask = LargestComponentMask(bitmap);
  const int w = mask.width();
  const int h = mask.height();

  // Start pixel: first foreground pixel in row-major order. Scanning this
  // way guarantees its West neighbour is background.
  Pixel start{-1, -1};
  for (int y = 0; y < h && start.x < 0; ++y) {
    for (int x = 0; x < w; ++x) {
      if (mask.at(x, y)) {
        start = {x, y};
        break;
      }
    }
  }
  if (start.x < 0) return {};

  // Backtrack pixel b: the background pixel we most recently examined. It
  // is always 8-adjacent to the current pixel (consecutive Moore
  // neighbours are adjacent to each other).
  auto dir_from_to = [](const Pixel& from, const Pixel& to) {
    for (int d = 0; d < 8; ++d) {
      if (from.x + kDx[d] == to.x && from.y + kDy[d] == to.y) return d;
    }
    return 0;  // unreachable for adjacent pixels
  };

  std::vector<Pixel> boundary;
  Pixel current = start;
  Pixel backtrack{start.x - 1, start.y};  // row-major scan => West is bg
  const Pixel initial_backtrack = backtrack;
  const std::size_t max_steps = static_cast<std::size_t>(w) * h * 4 + 8;

  boundary.push_back(current);
  for (std::size_t step = 0; step < max_steps; ++step) {
    const int dir0 = dir_from_to(current, backtrack);
    Pixel next{-1, -1};
    Pixel last_background = backtrack;
    for (int k = 1; k <= 8; ++k) {
      const int dir = (dir0 + k) % 8;
      const Pixel c{current.x + kDx[dir], current.y + kDy[dir]};
      if (mask.at(c.x, c.y)) {
        next = c;
        break;
      }
      last_background = c;
    }
    if (next.x < 0) return boundary;  // isolated single pixel

    backtrack = last_background;
    current = next;
    // Jacob's stopping criterion: back at the start, entering the same way.
    if (current == start && backtrack == initial_backtrack) break;
    boundary.push_back(current);
  }
  return boundary;
}

double BoundaryLength(const std::vector<Pixel>& boundary) {
  if (boundary.size() < 2) return 0.0;
  double length = 0.0;
  for (std::size_t i = 0; i < boundary.size(); ++i) {
    const Pixel& a = boundary[i];
    const Pixel& b = boundary[(i + 1) % boundary.size()];
    const double dx = a.x - b.x;
    const double dy = a.y - b.y;
    length += std::sqrt(dx * dx + dy * dy);
  }
  return length;
}

}  // namespace rotind
