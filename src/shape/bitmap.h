#ifndef ROTIND_SHAPE_BITMAP_H_
#define ROTIND_SHAPE_BITMAP_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rotind {

/// A 2-D point in image coordinates (x right, y down).
struct Point2 {
  double x = 0.0;
  double y = 0.0;
};

/// A binary raster image: the representation shapes arrive in before being
/// converted to time series (paper Figure 2 A).
class Bitmap {
 public:
  Bitmap(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }

  bool at(int x, int y) const {
    if (x < 0 || y < 0 || x >= width_ || y >= height_) return false;
    return pixels_[static_cast<std::size_t>(y) * width_ + x] != 0;
  }
  void set(int x, int y, bool value);

  std::size_t ForegroundCount() const;

  /// Rasterises a closed polygon (even-odd scanline fill) into a square
  /// bitmap of side `size`, scaling the polygon to fit with a fractional
  /// `margin` of blank border.
  static Bitmap FromPolygon(const std::vector<Point2>& polygon, int size,
                            double margin = 0.1);

  /// Rotates the image by `radians` about its centre (inverse nearest-
  /// neighbour mapping). Used by the tests and examples to verify that a
  /// rotated bitmap yields a circularly shifted profile.
  Bitmap Rotated(double radians) const;

  /// Centroid of the foreground pixels.
  Point2 Centroid() const;

  /// ASCII rendering ('#' foreground), for examples and debugging.
  std::string ToAscii() const;

 private:
  int width_;
  int height_;
  std::vector<std::uint8_t> pixels_;
};

}  // namespace rotind

#endif  // ROTIND_SHAPE_BITMAP_H_
