#ifndef ROTIND_SHAPE_CONTOUR_H_
#define ROTIND_SHAPE_CONTOUR_H_

#include <vector>

#include "src/shape/bitmap.h"

namespace rotind {

/// An integer pixel coordinate on a traced boundary.
struct Pixel {
  int x = 0;
  int y = 0;
  bool operator==(const Pixel& o) const { return x == o.x && y == o.y; }
};

/// Traces the outer boundary of the (largest) foreground component of
/// `bitmap` using Moore-neighbour tracing with Jacob's stopping criterion.
/// Returns boundary pixels in order (clockwise in image coordinates).
/// Returns an empty vector when the bitmap has no foreground.
std::vector<Pixel> TraceBoundary(const Bitmap& bitmap);

/// Total polygonal length of the (closed) boundary.
double BoundaryLength(const std::vector<Pixel>& boundary);

}  // namespace rotind

#endif  // ROTIND_SHAPE_CONTOUR_H_
