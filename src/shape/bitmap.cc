#include "src/shape/bitmap.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace rotind {

Bitmap::Bitmap(int width, int height)
    : width_(width),
      height_(height),
      pixels_(static_cast<std::size_t>(width) * height, 0) {
  assert(width > 0 && height > 0);
}

void Bitmap::set(int x, int y, bool value) {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) return;
  pixels_[static_cast<std::size_t>(y) * width_ + x] = value ? 1 : 0;
}

std::size_t Bitmap::ForegroundCount() const {
  std::size_t count = 0;
  for (std::uint8_t p : pixels_) count += p;
  return count;
}

Bitmap Bitmap::FromPolygon(const std::vector<Point2>& polygon, int size,
                           double margin) {
  assert(polygon.size() >= 3);
  Bitmap out(size, size);

  double min_x = std::numeric_limits<double>::infinity();
  double min_y = min_x;
  double max_x = -min_x;
  double max_y = -min_x;
  for (const Point2& p : polygon) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  const double span = std::max(max_x - min_x, max_y - min_y);
  const double usable = size * (1.0 - 2.0 * margin);
  const double scale = span > 0 ? usable / span : 1.0;
  const double off_x =
      size * margin + (usable - (max_x - min_x) * scale) / 2.0;
  const double off_y =
      size * margin + (usable - (max_y - min_y) * scale) / 2.0;

  std::vector<Point2> pts(polygon.size());
  for (std::size_t i = 0; i < polygon.size(); ++i) {
    pts[i].x = (polygon[i].x - min_x) * scale + off_x;
    pts[i].y = (polygon[i].y - min_y) * scale + off_y;
  }

  // Even-odd scanline fill at pixel centres.
  for (int y = 0; y < size; ++y) {
    const double cy = y + 0.5;
    std::vector<double> crossings;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const Point2& a = pts[i];
      const Point2& b = pts[(i + 1) % pts.size()];
      if ((a.y <= cy && b.y > cy) || (b.y <= cy && a.y > cy)) {
        const double t = (cy - a.y) / (b.y - a.y);
        crossings.push_back(a.x + t * (b.x - a.x));
      }
    }
    std::sort(crossings.begin(), crossings.end());
    for (std::size_t k = 0; k + 1 < crossings.size(); k += 2) {
      const int x_lo = static_cast<int>(std::ceil(crossings[k] - 0.5));
      const int x_hi = static_cast<int>(std::floor(crossings[k + 1] - 0.5));
      for (int x = x_lo; x <= x_hi; ++x) out.set(x, y, true);
    }
  }
  return out;
}

Bitmap Bitmap::Rotated(double radians) const {
  Bitmap out(width_, height_);
  const double cx = width_ / 2.0;
  const double cy = height_ / 2.0;
  const double c = std::cos(-radians);
  const double s = std::sin(-radians);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      // Inverse map the destination pixel centre into the source.
      const double dx = (x + 0.5) - cx;
      const double dy = (y + 0.5) - cy;
      const int sx = static_cast<int>(std::floor(cx + dx * c - dy * s));
      const int sy = static_cast<int>(std::floor(cy + dx * s + dy * c));
      if (at(sx, sy)) out.set(x, y, true);
    }
  }
  return out;
}

Point2 Bitmap::Centroid() const {
  double sx = 0.0;
  double sy = 0.0;
  std::size_t count = 0;
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      if (at(x, y)) {
        sx += x + 0.5;
        sy += y + 0.5;
        ++count;
      }
    }
  }
  if (count == 0) return {width_ / 2.0, height_ / 2.0};
  return {sx / static_cast<double>(count), sy / static_cast<double>(count)};
}

std::string Bitmap::ToAscii() const {
  std::string out;
  out.reserve(static_cast<std::size_t>(height_) * (width_ + 1));
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) out.push_back(at(x, y) ? '#' : '.');
    out.push_back('\n');
  }
  return out;
}

}  // namespace rotind
