#include "src/shape/generate.h"

#include <cmath>

namespace rotind {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

double EvalRadius(const RadialShapeSpec& spec, double theta) {
  double r = spec.base_radius;
  for (std::size_t k = 0; k < spec.amplitudes.size(); ++k) {
    r += spec.amplitudes[k] *
         std::cos(static_cast<double>(k + 1) * theta + spec.phases[k]);
  }
  // Radii must stay positive for the polygon to be star-convex.
  return std::max(r, 0.05 * spec.base_radius);
}

}  // namespace

Series RadialProfile(const RadialShapeSpec& spec, std::size_t n) {
  Series out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = EvalRadius(spec, kTwoPi * static_cast<double>(i) /
                                  static_cast<double>(n));
  }
  return out;
}

std::vector<Point2> RadialPolygon(const RadialShapeSpec& spec,
                                  std::size_t points) {
  std::vector<Point2> out(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double theta =
        kTwoPi * static_cast<double>(i) / static_cast<double>(points);
    const double r = EvalRadius(spec, theta);
    out[i] = {r * std::cos(theta), r * std::sin(theta)};
  }
  return out;
}

RadialShapeSpec RandomShapeSpec(Rng* rng, std::size_t harmonics,
                                double amp_scale, double decay) {
  RadialShapeSpec spec;
  spec.amplitudes.resize(harmonics);
  spec.phases.resize(harmonics);
  for (std::size_t k = 0; k < harmonics; ++k) {
    const double scale =
        amp_scale / std::pow(static_cast<double>(k + 1), decay);
    spec.amplitudes[k] = rng->Gaussian(0.0, scale);
    spec.phases[k] = rng->Uniform(0.0, kTwoPi);
  }
  return spec;
}

RadialShapeSpec PerturbSpec(const RadialShapeSpec& spec, Rng* rng,
                            double amplitude_jitter, double phase_jitter) {
  RadialShapeSpec out = spec;
  for (std::size_t k = 0; k < out.amplitudes.size(); ++k) {
    out.amplitudes[k] += rng->Gaussian(0.0, amplitude_jitter);
    out.phases[k] += rng->Gaussian(0.0, phase_jitter);
  }
  return out;
}

Series AddNoise(const Series& s, Rng* rng, double sigma) {
  Series out = s;
  if (sigma <= 0.0) return out;
  for (double& v : out) v += rng->Gaussian(0.0, sigma);
  return out;
}

Series SmoothTimeWarp(const Series& s, Rng* rng, double strength) {
  const std::size_t n = s.size();
  if (n == 0 || strength <= 0.0) return s;

  // Smooth periodic displacement from the first three harmonics.
  Series disp(n, 0.0);
  for (int k = 1; k <= 3; ++k) {
    const double amp =
        rng->Gaussian(0.0, strength / static_cast<double>(k));
    const double phase = rng->Uniform(0.0, kTwoPi);
    for (std::size_t i = 0; i < n; ++i) {
      disp[i] += amp * std::sin(kTwoPi * k * static_cast<double>(i) /
                                    static_cast<double>(n) +
                                phase);
    }
  }

  Series out(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Sample position in [0, n), circular.
    double pos = static_cast<double>(i) +
                 disp[i] * static_cast<double>(n);
    pos = std::fmod(pos, static_cast<double>(n));
    if (pos < 0) pos += static_cast<double>(n);
    const std::size_t i0 = static_cast<std::size_t>(pos) % n;
    const std::size_t i1 = (i0 + 1) % n;
    const double t = pos - std::floor(pos);
    out[i] = s[i0] * (1.0 - t) + s[i1] * t;
  }
  return out;
}

RadialShapeSpec ProjectilePointSpec(Rng* rng) {
  // Strong 1st/2nd harmonics produce the elongated, pointed outline of an
  // arrowhead; higher harmonics add the tang/notch/flaking detail (real
  // outlines have long spectral tails, which is what makes signature
  // dimensionality matter for indexing).
  RadialShapeSpec spec;
  spec.base_radius = 1.0;
  spec.amplitudes = {0.45 + rng->Uniform(-0.08, 0.08),
                     0.28 + rng->Uniform(-0.06, 0.06),
                     0.10 + rng->Uniform(-0.04, 0.04),
                     rng->Gaussian(0.0, 0.03),
                     rng->Gaussian(0.0, 0.02)};
  spec.phases = {0.0, rng->Uniform(-0.3, 0.3), rng->Uniform(0.0, kTwoPi),
                 rng->Uniform(0.0, kTwoPi), rng->Uniform(0.0, kTwoPi)};
  for (int k = 6; k <= 24; ++k) {
    spec.amplitudes.push_back(
        rng->Gaussian(0.0, 0.05 / std::pow(static_cast<double>(k), 0.9)));
    spec.phases.push_back(rng->Uniform(0.0, kTwoPi));
  }
  return spec;
}

RadialShapeSpec SkullSpec(Rng* rng, double jaw, double cranium) {
  RadialShapeSpec spec;
  spec.base_radius = 1.0;
  spec.amplitudes = {jaw, cranium, 0.08 + rng->Gaussian(0.0, 0.01),
                     rng->Gaussian(0.0, 0.02), rng->Gaussian(0.0, 0.01)};
  spec.phases = {0.4, 1.1, rng->Uniform(0.0, kTwoPi),
                 rng->Uniform(0.0, kTwoPi), rng->Uniform(0.0, kTwoPi)};
  return spec;
}

RadialShapeSpec ButterflySpec(Rng* rng, double asymmetry) {
  RadialShapeSpec spec;
  spec.base_radius = 1.0;
  // Dominant 4th harmonic: four wing lobes; 2nd harmonic: body elongation;
  // odd-harmonic term with off-axis phase introduces chirality.
  spec.amplitudes = {0.10, 0.22, asymmetry, 0.30, rng->Gaussian(0.0, 0.015)};
  spec.phases = {0.0, 0.0, 0.9, 0.0, rng->Uniform(0.0, kTwoPi)};
  return spec;
}

RadialShapeSpec DigitSixSpec() {
  // A chiral, asymmetric blob: one bulge (the loop of the "6") plus a tail.
  RadialShapeSpec spec;
  spec.base_radius = 1.0;
  spec.amplitudes = {0.35, 0.18, 0.12, 0.06};
  spec.phases = {0.3, 1.7, 2.9, 4.1};
  return spec;
}

}  // namespace rotind
