/// Fuzzing entry point for the untrusted-input surfaces: the dataset
/// loaders (binary container and UCR text), the paged RIDX index
/// reader, the shard-set manifest parser, and the serve wire protocol's
/// request + admin parsers. One input image is fed to ALL parsers; any
/// crash, sanitizer report, or runaway allocation is a bug, since every
/// malformed input must map to a Status.
///
/// Two build modes:
///
///  * Default: a deterministic standalone runner. With file arguments it
///    replays each file through the parsers (corpus regression mode); with
///    no arguments it replays a built-in corpus of structurally interesting
///    images derived from the fault-injection harness's corruption
///    taxonomy. Exit code 0 means "no crash", which is the entire contract.
///
///  * -DROTIND_FUZZER=ON (clang only): links libFuzzer via
///    -fsanitize=fuzzer and exports LLVMFuzzerTestOneInput for
///    coverage-guided fuzzing:  ./rotind_fuzz_load corpus_dir/
///
/// Parsed datasets are additionally round-tripped through a checked search
/// call, so a file that parses must also be *usable* without UB.

#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/flat_dataset.h"
#include "src/index/index_io.h"
#include "src/io/bytes.h"
#include "src/io/serialize.h"
#include "src/search/engine.h"
#include "src/search/scan.h"
#include "src/serve/protocol.h"
#include "src/storage/backend.h"
#include "src/storage/index_file.h"
#include "src/storage/manifest.h"

namespace {

using namespace rotind;

/// Every parser outcome is acceptable except a crash. When a parse
/// SUCCEEDS, push the dataset through the validated search boundary too:
/// accepted files must be fully usable.
void ExerciseParsers(const std::uint8_t* data, std::size_t size) {
  const char* bytes = reinterpret_cast<const char*>(data);

  StatusOr<Dataset> binary = ParseDatasetBinary(bytes, size);
  StatusOr<Dataset> ucr = ParseDatasetUcr(std::string_view(bytes, size));
  for (StatusOr<Dataset>* parsed : {&binary, &ucr}) {
    if (!parsed->ok()) continue;
    const Dataset& ds = **parsed;
    if (ds.empty() || ds.length() == 0 || ds.length() > 1024 ||
        ds.size() > 64) {
      continue;  // keep the search step cheap under fuzzing
    }
    ScanOptions options;
    (void)SearchDatabaseChecked(ds.items, ds.items[0], ScanAlgorithm::kWedge,
                                options);

    // Engine-level round trip: the same parsed items through the flat
    // storage layout and the full pruning cascade (fft + wedge, 1-NN).
    // In contract-enabled builds this also walks the parsed data past
    // every ROTIND_CONTRACT invariant (L <= U, wedge nesting, LB <=
    // exact), so a loader bug that produces a structurally broken dataset
    // aborts here instead of returning a quietly wrong neighbor.
    StatusOr<FlatDataset> flat = FlatDataset::FromItemsChecked(ds.items);
    if (!flat.ok()) continue;
    EngineOptions engine_options;
    engine_options.cascade.stages = {StageKind::kFftMagnitude,
                                     StageKind::kWedge};
    const QueryEngine engine(*flat, engine_options);
    (void)engine.SearchChecked(ds.items[0]);
  }

  // Serve wire protocol: the request parser is the server's only
  // network-facing untrusted surface. Each line of the input is one
  // request; an accepted request must also format cleanly.
  {
    std::string_view rest(bytes, size);
    for (int lines = 0; !rest.empty() && lines < 64; ++lines) {
      const std::size_t eol = rest.find('\n');
      const std::string_view line =
          eol == std::string_view::npos ? rest : rest.substr(0, eol);
      StatusOr<serve::Request> request = serve::ParseRequest(line);
      if (request.ok()) {
        serve::Response response;
        response.status = Status::Ok();
        response.effective_k = request->k;
        (void)serve::FormatResponse(*request, response);
      }
      // Admin grammar rides the same line transport; both the dispatch
      // test and the strict parse must hold for arbitrary bytes.
      if (serve::IsAdminRequest(line)) {
        (void)serve::ParseAdminRequest(line);
      }
      if (eol == std::string_view::npos) break;
      rest.remove_prefix(eol + 1);
    }
  }

  // Shard-set manifest: the reload path's untrusted surface. A manifest
  // that parses must also re-serialize (writer/parser agreement) — and
  // the serialized image must parse back to the same logical manifest.
  {
    StatusOr<storage::Manifest> manifest =
        storage::ParseManifest(bytes, size);
    if (manifest.ok()) {
      StatusOr<std::string> image = storage::SerializeManifest(*manifest);
      if (image.ok()) {
        (void)storage::ParseManifest(image->data(), image->size());
      }
    }
  }

  // Paged RIDX index container: the storage engine's untrusted surface.
  // FromMemory must map every byte string to a Status or a fully usable
  // IndexFile — and "usable" is exercised here: every page is read back
  // (checksum verification path) and every object is fetched through a
  // deliberately tiny BufferPool (eviction + pin churn), all of which must
  // return Status, never crash.
  StatusOr<std::unique_ptr<storage::IndexFile>> ridx =
      storage::IndexFile::FromMemory(std::string(bytes, size));
  if (ridx.ok()) {
    const storage::IndexFile& file = **ridx;
    if (file.num_objects() <= 64 && file.series_length() <= 1024 &&
        file.page_size_bytes() <= (1u << 16) && file.num_pages() <= 256) {
      std::vector<char> page(file.page_size_bytes());
      for (std::size_t p = 0; p < file.num_pages(); ++p) {
        (void)file.ReadPage(p, page.data());
      }
      const auto backend = storage::FileBackend::FromIndex(
          *std::move(ridx), /*pool_pages=*/2, storage::EvictionPolicy::kLru);
      storage::FetchStats io;
      for (std::size_t i = 0; i < backend->size(); ++i) {
        (void)backend->TryFetch(i, &io);
      }
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  ExerciseParsers(data, size);
  return 0;
}

#ifndef ROTIND_FUZZER

namespace {

/// Built-in deterministic corpus: a valid image plus hand-picked structural
/// mutations of it (truncations at every byte, header field extremes, and a
/// few text-format edge cases). Small enough to run in CI on every commit.
std::vector<std::string> BuiltInCorpus() {
  std::vector<std::string> corpus;

  Dataset ds;
  for (int i = 0; i < 3; ++i) {
    ds.items.push_back({0.5 * i, 1.0, -2.0, 0.25});
    ds.labels.push_back(i);
    // Built up in two steps: `"c" + std::to_string(i)` trips GCC 12's
    // -Wrestrict false positive (GCC PR 105651) under -Werror.
    std::string name = "c";
    name += std::to_string(i);
    ds.names.push_back(std::move(name));
  }
  // Serialize through a temp file to obtain a genuine container image.
  const std::string path =
      "/tmp/rotind_fuzz_seed." + std::to_string(::getpid()) + ".bin";
  if (SaveDatasetBinaryStatus(ds, path).ok()) {
    std::ifstream in(path, std::ios::binary);
    std::string image((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::remove(path.c_str());
    // Every prefix of the valid image (exhaustive truncation sweep).
    for (std::size_t cut = 0; cut <= image.size(); ++cut) {
      corpus.push_back(image.substr(0, cut));
    }
    // Every single-byte corruption of the header.
    for (std::size_t i = 0; i < 26 && i < image.size(); ++i) {
      std::string mutated = image;
      mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
      corpus.push_back(std::move(mutated));
    }
  }

  // A genuine RIDX index image (tiny 64-byte pages keep the sweep cheap):
  // every prefix, plus bit-flips across the header and strided through the
  // resident sections and data pages — the corruption taxonomy the index
  // reader's checksums must catch without crashing.
  {
    Dataset small;
    for (int i = 0; i < 4; ++i) {
      small.items.push_back({0.25 * i, -1.0, 2.0, 0.5, -0.5, 1.5, 0.0, 3.0});
      small.labels.push_back(i % 2);
    }
    IndexBuildOptions build;
    build.sig_dims = 4;
    build.paa_dims = 4;
    build.page_size_bytes = 64;
    const std::string ridx_path =
        "/tmp/rotind_fuzz_seed." + std::to_string(::getpid()) + ".ridx";
    if (BuildIndexFile(small, build, ridx_path).ok()) {
      std::ifstream in(ridx_path, std::ios::binary);
      std::string image((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
      std::remove(ridx_path.c_str());
      for (std::size_t cut = 0; cut <= image.size(); cut += 7) {
        corpus.push_back(image.substr(0, cut));
      }
      for (std::size_t i = 0; i < 64 && i < image.size(); ++i) {
        std::string mutated = image;
        mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
        corpus.push_back(std::move(mutated));
      }
      for (std::size_t i = 64; i < image.size(); i += 13) {
        std::string mutated = image;
        mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
        corpus.push_back(std::move(mutated));
      }
      corpus.push_back(std::move(image));
    }
  }

  // Shard-set manifest seeds: a genuine two-shard image with tombstones,
  // every truncation prefix, a bit-flip sweep (header checksum, version,
  // generation-rollback bait, shard-count mismatches), and structural
  // near-misses.
  {
    storage::Manifest manifest;
    manifest.generation = 3;
    manifest.shards.push_back(storage::ManifestShard{"shard-0.ridx", 5, 8});
    manifest.shards.push_back(storage::ManifestShard{"shard-1.ridx", 3, 8});
    manifest.tombstones = {1, 6};
    StatusOr<std::string> serialized = storage::SerializeManifest(manifest);
    if (serialized.ok()) {
      const std::string& image = *serialized;
      for (std::size_t cut = 0; cut <= image.size(); ++cut) {
        corpus.push_back(image.substr(0, cut));
      }
      for (std::size_t i = 0; i < image.size(); ++i) {
        std::string mutated = image;
        mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
        corpus.push_back(std::move(mutated));
      }
      // Generation rollback bait: zero the generation field (offset 8)
      // outright — parses fine, rejected only at the swap point.
      std::string rollback = image;
      for (std::size_t i = 8; i < 16 && i < rollback.size(); ++i) {
        rollback[i] = '\0';
      }
      corpus.push_back(std::move(rollback));
      // Shard-count mismatch: a count field promising more shards than
      // the body holds (truncation-class), and fewer (trailing-bytes).
      for (const char count : {'\x7f', '\x01', '\x00'}) {
        std::string miscount = image;
        if (miscount.size() > 16) miscount[16] = count;
        corpus.push_back(std::move(miscount));
      }
      // Checksum-valid absurd shard count: under the hard cap but far
      // beyond what the bytes can hold, header checksum recomputed so the
      // size bound (not the checksum) is what rejects it — the allocation
      // bomb a fuzzer would otherwise find.
      std::string absurd = image;
      if (absurd.size() >= storage::kManifestHeaderBytes) {
        const std::uint64_t huge = 1u << 19;
        std::memcpy(absurd.data() + 16, &huge, sizeof huge);
        const std::uint64_t checksum =
            Fnv1a64(absurd.data(),
                    storage::kManifestHeaderBytes - sizeof(std::uint64_t));
        std::memcpy(absurd.data() + storage::kManifestHeaderBytes -
                        sizeof(std::uint64_t),
                    &checksum, sizeof checksum);
      }
      corpus.push_back(std::move(absurd));
      corpus.push_back(image + "garbage");
      corpus.push_back(image);
    }
  }
  corpus.push_back("RMAN");
  corpus.push_back(std::string("RMAN") + std::string(36, '\0'));
  corpus.push_back(std::string("RMAN") + std::string(4096, '\xff'));

  // Admin-verb seeds: the valid grammar and its near-misses.
  corpus.push_back("reload\n");
  corpus.push_back("reload db.rman\n");
  corpus.push_back("reload db.rman extra\n");
  corpus.push_back("reload \n");
  corpus.push_back("reloadx\nreload\x01\n RELOAD\n");
  corpus.push_back("reload " + std::string(4200, 'a') + "\n");

  corpus.push_back("");
  corpus.push_back("RIND");
  corpus.push_back("RIDX");
  corpus.push_back(std::string(4096, '\0'));
  corpus.push_back("1,2,3\n4,5,6\n");
  corpus.push_back("1,2,3\n4,5\n");          // ragged
  corpus.push_back("nan,inf,-inf\n");        // non-finite everywhere
  corpus.push_back("label,not,numbers\n");   // text garbage
  corpus.push_back("1e308,1e308,1e308\n");   // near-overflow values
  corpus.push_back("1,2,3");                 // no trailing newline

  // Serve request-parser seeds: the valid grammar, every near-miss the
  // parser must reject typed, and hostile shapes (overlong, control
  // bytes, numeric extremes).
  corpus.push_back("nn 0\n");
  corpus.push_back("knn 3 7 deadline_ms=2.5\n");
  corpus.push_back("range 1 0.75\nnn 2 deadline_ms=100\nknn 0 1\n");
  corpus.push_back("nn\nknn 1\nrange 1\n");              // missing args
  corpus.push_back("nn -1\nknn 1 0\nrange 1 -2\n");      // out of range
  corpus.push_back("nn 18446744073709551616\n");         // u64 overflow
  corpus.push_back("knn 1 1048577\n");                   // k > max
  corpus.push_back("range 0 nan\nrange 0 inf\n");        // non-finite
  corpus.push_back("nn 1 deadline_ms=0\nnn 1 deadline_ms=-5\n");
  corpus.push_back("nn 1 deadline_ms=1e400\n");          // deadline inf
  // NaN deadlines: every comparison with NaN is false, so only a
  // positively-phrased range check rejects these.
  corpus.push_back("nn 1 deadline_ms=nan\nnn 1 deadline_ms=-nan\n");
  corpus.push_back("nn 1 deadline_ms=inf\nnn 1 deadline_ms=-inf\n");
  corpus.push_back("nn 1 deadline_ms=86400001\n");       // past the 1-day cap
  corpus.push_back("NN 1\n nn 1\nnn  1\nnn 1 \n");       // case / spacing
  corpus.push_back("nn 1 extra tokens here\n");
  corpus.push_back("nn 1\r\nknn 2 3\r\n");               // CRLF endings
  corpus.push_back(std::string("nn 1\x01\x7f\n"));       // control bytes
  corpus.push_back("nn " + std::string(4200, '9') + "\n");  // overlong
  return corpus;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t total = 0;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      std::ifstream in(argv[i], std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", argv[i]);
        return 2;
      }
      std::string bytes((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
      ExerciseParsers(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                      bytes.size());
      ++total;
    }
  } else {
    for (const std::string& input : BuiltInCorpus()) {
      ExerciseParsers(reinterpret_cast<const std::uint8_t*>(input.data()),
                      input.size());
      ++total;
    }
  }
  std::printf("rotind_fuzz_load: %zu inputs, no crashes\n", total);
  return 0;
}

#endif  // ROTIND_FUZZER
