/// rotind — command-line front end for the rotation-invariant shape/series
/// search library.
///
///   rotind generate --kind projectile|heterogeneous|lightcurve|table8
///                   --m 1000 --n 251 --seed 1 --out db.csv [--binary]
///   rotind info     --db db.csv
///   rotind search   --db db.csv --query-index 5 [--algo wedge|brute|ea|fft]
///                   [--cascade vecsig,fft,lbi,ea] [--dtw --band 5]
///                   [--mirror] [--max-shift S] [--metrics-json out.json]
///   rotind knn      --db db.csv --query-index 5 --k 5 [...]
///                   [--cascade ...] [--metrics-json out.json]
///   rotind classify --db db.csv [--dtw --band 5] [--threads T]
///   rotind motif    --db db.csv [--dtw --band 5]
///   rotind discord  --db db.csv [--dtw --band 5]
///   rotind index build  --db db.csv --index db.ridx [--page-size 4096]
///                       [--dims 16] [--paa-dims 16]
///   rotind index shard-build --db db.csv --manifest db.rman --shards 4
///                       [--page-size 4096] [--dims 16] [--paa-dims 16]
///   rotind index compact --manifest db.rman [--inserts more.csv]
///                       [--tombstones 3,17,42] [--page-size 4096]
///                       [--dims 16] [--paa-dims 16]
///   rotind index search --index db.ridx --query-db q.csv --query-index 5
///                       [--k 1] [--backend file|memory|simulated]
///                       [--db db.csv (memory/simulated)] [--pool-pages 64]
///                       [--eviction lru|clock] [--dtw --band 5] [--mirror]
///                       [--metrics-json out.json]
///   rotind version  (prints the build version and the dispatched SIMD
///                    kernel tier; honours ROTIND_SIMD=avx2|scalar)
///   rotind serve    --index db.ridx | --manifest db.rman
///                   [--workers 4] [--queue-capacity 64]
///                   [--default-deadline-ms D] [--drain-deadline-ms 5000]
///                   [--no-degrade] [--degraded-k 1] [--retry-attempts 3]
///                   [--fault-transient-prob p] [--fault-torn-prob p]
///                   [--fault-latency-prob p] [--fault-seed s]
///                   [--pool-pages 64] [--eviction lru|clock]
///                   [--dtw --band 5] [--mirror] [--metrics-json out.json]
///
/// `index build` writes the paged RIDX container (resident FFT/PAA
/// signatures + paged series data); `index search` answers exact
/// rotation-invariant (k-)NN queries over it. --backend selects storage:
/// `file` reads data pages with pread through a BufferPool, while `memory`
/// and `simulated` rebuild the index in RAM from --db (simulated adds the
/// paper's Section 5.4 page accounting). All three return bit-identical
/// matches; only the `io:` line differs — diffing the `match:` lines across
/// backends is the storage-roundtrip check CI runs.
///
/// --cascade overrides --algo for `search` and `knn` with an explicit
/// pruning pipeline: a comma-separated list of stages from vecsig (pooled
/// rotation-invariant signature filter), fft (FFT-magnitude filter), lbi
/// (two-pass LB_Improved filter), wedge (hierarchal wedge terminal), ea
/// (early-abandoning scan terminal), full / fullband (exhaustive
/// terminals). Unsound compositions are normalized, not rejected: filters
/// that do not lower-bound the configured measure are dropped and a
/// filter-only list gets `ea` appended, so the answers stay exact.
///
/// Databases are UCR-format text (label,v1,v2,...) or the binary format
/// produced with --binary; the loader sniffs the magic bytes.
///
/// --metrics-json writes the query's stage-attributed observability report
/// (candidate flow, step attribution, wedge walk, latency) as JSON.
///
/// `index shard-build` splits the database into --shards contiguous RIDX
/// shards (uneven split: the first `m % shards` shards get one extra row)
/// next to a checksummed manifest published by atomic rename; `index
/// compact` opens a manifest, stages --inserts / --tombstones in the delta
/// segment, and folds them into a new manifest generation. `serve
/// --manifest` serves a sharded index and accepts the admin line
/// `reload [<manifest>]` on stdin: the server re-opens the manifest,
/// drains in-flight queries, and atomically swaps the engine — a reload
/// that does not advance the generation (rollback) is refused.
///
/// `serve` runs a long-lived concurrent query server over the file
/// backend: requests are read one per line from stdin (see
/// src/serve/protocol.h for the grammar), responses are written one per
/// line to stdout, and SIGINT/SIGTERM (or stdin EOF) triggers a graceful
/// shutdown — admission stops, in-flight and queued work drains under
/// --drain-deadline-ms, and the final server stats are dumped as JSON to
/// stderr (or --metrics-json). The --fault-* flags wire a seeded fault
/// schedule into the backend for resilience testing.
///
/// Exit codes: 0 success; 1 runtime/I-O failure (e.g. a write failed, or
/// `serve` could not open the index); 2 usage error or invalid input
/// (unknown flag, malformed number, value out of range for the loaded
/// database, unreadable/corrupt database). A signal-triggered `serve`
/// drain exits 0: shutdown-by-request is the server working as designed.

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/flat_dataset.h"
#include "src/datasets/synthetic.h"
#include "src/lightcurve/lightcurve.h"
#include "src/eval/classify.h"
#include "src/index/candidate_scan.h"
#include "src/index/index_io.h"
#include "src/index/sharded_index.h"
#include "src/io/serialize.h"
#include "src/mining/motif.h"
#include "src/obs/metrics.h"
#include "src/search/engine.h"
#include "src/search/scan.h"
#include "src/simd/simd.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/storage/backend.h"
#include "src/storage/manifest.h"

namespace {

using namespace rotind;

struct Args {
  std::string command;
  std::string subcommand;  ///< `index` only: build|search.
  std::string db_path;
  std::string out_path;
  std::string metrics_json_path;
  std::string kind = "projectile";
  std::string algo = "wedge";
  std::string cascade;  ///< Comma-separated stage list; empty = use --algo.
  CascadeSpec cascade_spec;  ///< Parsed form of `cascade` (when non-empty).
  std::size_t m = 1000;
  std::size_t n = 251;
  std::uint64_t seed = 1;
  int query_index = 0;
  int k = 5;
  bool dtw = false;
  int band = 5;
  bool mirror = false;
  int max_shift = -1;
  bool binary = false;
  int threads = 1;
  // `index` subcommands.
  std::string index_path;
  std::string query_db_path;
  // Sharded-index subcommands + `serve --manifest`.
  std::string manifest_path;
  std::string inserts_path;
  std::string tombstones;  ///< Comma-separated global ids.
  int shards = 4;
  std::string backend = "file";
  std::string eviction = "lru";
  std::size_t page_size = 4096;
  std::size_t dims = 16;
  std::size_t paa_dims = 16;
  std::size_t pool_pages = 64;
  // `serve` only.
  int workers = 4;
  std::size_t queue_capacity = 64;
  double default_deadline_ms = 0.0;
  double drain_deadline_ms = 5000.0;
  bool no_degrade = false;
  int degraded_k = 1;
  int retry_attempts = 3;
  double fault_transient_prob = 0.0;
  double fault_torn_prob = 0.0;
  double fault_latency_prob = 0.0;
  std::uint64_t fault_seed = 1;
};

int Usage() {
  std::fprintf(stderr,
               "usage: rotind <generate|info|search|knn|classify|motif|"
               "discord|index build|index search|serve|version> [flags]\n"
               "  see the header of tools/rotind_cli.cc for the flag list\n");
  return 2;
}

/// Strict numeric parsing: the whole token must convert, with no silent
/// truncation (std::atoi("12abc") == 12 and std::atoi("zebra") == 0 both
/// used to slip through).
bool ParseInt(const char* flag, const char* text, long min, long max,
              long* out) {
  if (text == nullptr || *text == '\0') {
    std::fprintf(stderr, "%s needs a value\n", flag);
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (errno == ERANGE || end != text + std::strlen(text)) {
    std::fprintf(stderr, "%s: '%s' is not a valid integer\n", flag, text);
    return false;
  }
  if (v < min || v > max) {
    std::fprintf(stderr, "%s: %ld is out of range [%ld, %ld]\n", flag, v, min,
                 max);
    return false;
  }
  *out = v;
  return true;
}

/// Same strictness for floating-point flags (probabilities, deadlines).
bool ParseDoubleFlag(const char* flag, const char* text, double min,
                     double max, double* out) {
  if (text == nullptr || *text == '\0') {
    std::fprintf(stderr, "%s needs a value\n", flag);
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (errno == ERANGE || end != text + std::strlen(text)) {
    std::fprintf(stderr, "%s: '%s' is not a valid number\n", flag, text);
    return false;
  }
  if (!(v >= min && v <= max)) {  // NaN fails too.
    std::fprintf(stderr, "%s: %g is out of range [%g, %g]\n", flag, v, min,
                 max);
    return false;
  }
  *out = v;
  return true;
}

/// Parses a comma-separated --cascade stage list into a CascadeSpec.
/// Stage names mirror the StageKind enum: filters vecsig|fft|lbi, terminals
/// wedge|ea|full|fullband. Soundness normalization (dropping filters that
/// do not lower-bound the configured measure) is the engine's job, not the
/// parser's — the CLI only rejects names it does not know.
bool ParseCascadeFlag(const std::string& text, CascadeSpec* out) {
  out->stages.clear();
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string token =
        text.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (token == "vecsig") {
      out->stages.push_back(StageKind::kVecSignature);
    } else if (token == "fft") {
      out->stages.push_back(StageKind::kFftMagnitude);
    } else if (token == "lbi") {
      out->stages.push_back(StageKind::kLbImproved);
    } else if (token == "wedge") {
      out->stages.push_back(StageKind::kWedge);
    } else if (token == "ea") {
      out->stages.push_back(StageKind::kExactScan);
    } else if (token == "full") {
      out->stages.push_back(StageKind::kFullScan);
    } else if (token == "fullband") {
      out->stages.push_back(StageKind::kFullScanBanded);
    } else {
      std::fprintf(stderr,
                   "--cascade: unknown stage '%s' (use "
                   "vecsig|fft|lbi|wedge|ea|full|fullband)\n",
                   token.c_str());
      return false;
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (out->stages.empty()) {
    std::fprintf(stderr, "--cascade needs at least one stage\n");
    return false;
  }
  return true;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  args->command = argv[1];
  int first_flag = 2;
  if (args->command == "index") {
    if (argc < 3) {
      std::fprintf(stderr, "index needs a subcommand: build|search\n");
      return false;
    }
    args->subcommand = argv[2];
    if (args->subcommand != "build" && args->subcommand != "search" &&
        args->subcommand != "shard-build" && args->subcommand != "compact") {
      std::fprintf(stderr,
                   "unknown index subcommand '%s' (use "
                   "build|search|shard-build|compact)\n",
                   args->subcommand.c_str());
      return false;
    }
    first_flag = 3;
  }
  for (int i = first_flag; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    auto next_int = [&](long min, long max, long* out) {
      return ParseInt(flag.c_str(), next(), min, max, out);
    };
    long v = 0;
    if (flag == "--db") {
      const char* value = next();
      if (value == nullptr) return false;
      args->db_path = value;
    } else if (flag == "--out") {
      const char* value = next();
      if (value == nullptr) return false;
      args->out_path = value;
    } else if (flag == "--metrics-json") {
      const char* value = next();
      if (value == nullptr) return false;
      args->metrics_json_path = value;
    } else if (flag == "--kind") {
      const char* value = next();
      if (value == nullptr) return false;
      args->kind = value;
    } else if (flag == "--algo") {
      const char* value = next();
      if (value == nullptr) return false;
      args->algo = value;
    } else if (flag == "--cascade") {
      const char* value = next();
      if (value == nullptr) return false;
      args->cascade = value;
    } else if (flag == "--m") {
      if (!next_int(1, std::numeric_limits<long>::max(), &v)) return false;
      args->m = static_cast<std::size_t>(v);
    } else if (flag == "--n") {
      if (!next_int(1, std::numeric_limits<long>::max(), &v)) return false;
      args->n = static_cast<std::size_t>(v);
    } else if (flag == "--seed") {
      if (!next_int(0, std::numeric_limits<long>::max(), &v)) return false;
      args->seed = static_cast<std::uint64_t>(v);
    } else if (flag == "--query-index") {
      if (!next_int(0, std::numeric_limits<int>::max(), &v)) return false;
      args->query_index = static_cast<int>(v);
    } else if (flag == "--k") {
      if (!next_int(1, std::numeric_limits<int>::max(), &v)) return false;
      args->k = static_cast<int>(v);
    } else if (flag == "--band") {
      if (!next_int(0, std::numeric_limits<int>::max(), &v)) return false;
      args->band = static_cast<int>(v);
    } else if (flag == "--max-shift") {
      if (!next_int(-1, std::numeric_limits<int>::max(), &v)) return false;
      args->max_shift = static_cast<int>(v);
    } else if (flag == "--threads") {
      if (!next_int(1, 256, &v)) return false;
      args->threads = static_cast<int>(v);
    } else if (flag == "--dtw") {
      args->dtw = true;
    } else if (flag == "--mirror") {
      args->mirror = true;
    } else if (flag == "--binary") {
      args->binary = true;
    } else if (flag == "--index") {
      const char* value = next();
      if (value == nullptr) return false;
      args->index_path = value;
    } else if (flag == "--query-db") {
      const char* value = next();
      if (value == nullptr) return false;
      args->query_db_path = value;
    } else if (flag == "--manifest") {
      const char* value = next();
      if (value == nullptr) return false;
      args->manifest_path = value;
    } else if (flag == "--inserts") {
      const char* value = next();
      if (value == nullptr) return false;
      args->inserts_path = value;
    } else if (flag == "--tombstones") {
      const char* value = next();
      if (value == nullptr) return false;
      args->tombstones = value;
    } else if (flag == "--shards") {
      if (!next_int(1, 1 << 20, &v)) return false;
      args->shards = static_cast<int>(v);
    } else if (flag == "--backend") {
      const char* value = next();
      if (value == nullptr) return false;
      args->backend = value;
    } else if (flag == "--eviction") {
      const char* value = next();
      if (value == nullptr) return false;
      args->eviction = value;
    } else if (flag == "--page-size") {
      if (!next_int(64, 64L << 20, &v)) return false;
      args->page_size = static_cast<std::size_t>(v);
    } else if (flag == "--dims") {
      if (!next_int(0, std::numeric_limits<int>::max(), &v)) return false;
      args->dims = static_cast<std::size_t>(v);
    } else if (flag == "--paa-dims") {
      if (!next_int(0, std::numeric_limits<int>::max(), &v)) return false;
      args->paa_dims = static_cast<std::size_t>(v);
    } else if (flag == "--pool-pages") {
      if (!next_int(1, std::numeric_limits<int>::max(), &v)) return false;
      args->pool_pages = static_cast<std::size_t>(v);
    } else if (flag == "--workers") {
      if (!next_int(1, 256, &v)) return false;
      args->workers = static_cast<int>(v);
    } else if (flag == "--queue-capacity") {
      if (!next_int(1, 1 << 20, &v)) return false;
      args->queue_capacity = static_cast<std::size_t>(v);
    } else if (flag == "--default-deadline-ms") {
      if (!ParseDoubleFlag(flag.c_str(), next(), 0.0, 86'400'000.0,
                           &args->default_deadline_ms)) {
        return false;
      }
    } else if (flag == "--drain-deadline-ms") {
      if (!ParseDoubleFlag(flag.c_str(), next(), 1.0, 86'400'000.0,
                           &args->drain_deadline_ms)) {
        return false;
      }
    } else if (flag == "--no-degrade") {
      args->no_degrade = true;
    } else if (flag == "--degraded-k") {
      if (!next_int(1, std::numeric_limits<int>::max(), &v)) return false;
      args->degraded_k = static_cast<int>(v);
    } else if (flag == "--retry-attempts") {
      if (!next_int(1, 16, &v)) return false;
      args->retry_attempts = static_cast<int>(v);
    } else if (flag == "--fault-transient-prob") {
      if (!ParseDoubleFlag(flag.c_str(), next(), 0.0, 1.0,
                           &args->fault_transient_prob)) {
        return false;
      }
    } else if (flag == "--fault-torn-prob") {
      if (!ParseDoubleFlag(flag.c_str(), next(), 0.0, 1.0,
                           &args->fault_torn_prob)) {
        return false;
      }
    } else if (flag == "--fault-latency-prob") {
      if (!ParseDoubleFlag(flag.c_str(), next(), 0.0, 1.0,
                           &args->fault_latency_prob)) {
        return false;
      }
    } else if (flag == "--fault-seed") {
      if (!next_int(0, std::numeric_limits<long>::max(), &v)) return false;
      args->fault_seed = static_cast<std::uint64_t>(v);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  if (args->algo != "wedge" && args->algo != "brute" && args->algo != "ea" &&
      args->algo != "fft") {
    std::fprintf(stderr,
                 "--algo must be one of wedge|brute|ea|fft, got '%s'\n",
                 args->algo.c_str());
    return false;
  }
  if (!args->cascade.empty() &&
      !ParseCascadeFlag(args->cascade, &args->cascade_spec)) {
    return false;
  }
  if (args->backend != "file" && args->backend != "memory" &&
      args->backend != "simulated") {
    std::fprintf(stderr,
                 "--backend must be one of file|memory|simulated, got '%s'\n",
                 args->backend.c_str());
    return false;
  }
  if (args->eviction != "lru" && args->eviction != "clock") {
    std::fprintf(stderr, "--eviction must be lru or clock, got '%s'\n",
                 args->eviction.c_str());
    return false;
  }
  return true;
}

bool LoadDb(const std::string& path, Dataset* out) {
  StatusOr<Dataset> binary = LoadDatasetBinaryStatus(path);
  if (binary.ok()) {
    *out = *std::move(binary);
    return true;
  }
  // Not a binary container at all? Try UCR text; otherwise report the
  // binary loader's specific verdict (truncated, corrupt header, ...).
  if (binary.status().code() == StatusCode::kBadMagic ||
      binary.status().code() == StatusCode::kTruncated) {
    StatusOr<Dataset> ucr = LoadDatasetUcrStatus(path);
    if (ucr.ok()) {
      *out = *std::move(ucr);
      return true;
    }
    std::fprintf(stderr, "cannot read database %s: %s\n", path.c_str(),
                 ucr.status().ToString().c_str());
    return false;
  }
  std::fprintf(stderr, "cannot read database %s: %s\n", path.c_str(),
               binary.status().ToString().c_str());
  return false;
}

/// Checks every flag whose valid range depends on the loaded database.
/// Returns false (after an actionable message) when any is out of range.
bool ValidateArgsAgainstDb(const Args& args, const Dataset& db) {
  const long m = static_cast<long>(db.size());
  const long n = static_cast<long>(db.length());
  if (args.command == "search" || args.command == "knn") {
    if (args.query_index >= m) {
      std::fprintf(stderr,
                   "--query-index %d is out of range: database has %ld "
                   "series (valid: 0..%ld)\n",
                   args.query_index, m, m - 1);
      return false;
    }
  }
  if (args.command == "knn") {
    if (args.k > m - 1) {
      std::fprintf(stderr,
                   "--k %d exceeds the %ld available neighbors (database "
                   "size %ld minus the query)\n",
                   args.k, m - 1, m);
      return false;
    }
  }
  if (args.dtw && args.band > n) {
    std::fprintf(stderr,
                 "--band %d exceeds the series length %ld; use 0..%ld\n",
                 args.band, n, n);
    return false;
  }
  if (args.max_shift > n) {
    std::fprintf(stderr,
                 "--max-shift %d exceeds the series length %ld; use -1 "
                 "(unlimited) or 0..%ld\n",
                 args.max_shift, n, n);
    return false;
  }
  return true;
}

ScanOptions MakeScanOptions(const Args& args) {
  ScanOptions options;
  options.kind = args.dtw ? DistanceKind::kDtw : DistanceKind::kEuclidean;
  options.band = args.band;
  options.rotation.mirror = args.mirror;
  options.rotation.max_shift = args.max_shift;
  return options;
}

ScanAlgorithm MakeAlgorithm(const Args& args) {
  if (args.algo == "brute") {
    return args.dtw ? ScanAlgorithm::kBruteForceBanded
                    : ScanAlgorithm::kBruteForce;
  }
  if (args.algo == "ea") return ScanAlgorithm::kEarlyAbandon;
  if (args.algo == "fft") return ScanAlgorithm::kFftLowerBound;
  return ScanAlgorithm::kWedge;
}

/// Engine configuration for `search`/`knn`: the legacy --algo mapping,
/// with --cascade (when given) overriding the pruning pipeline. The engine
/// normalizes the spec for the configured measure, so an unsound filter is
/// dropped rather than producing wrong answers.
EngineOptions MakeEngineOptions(const Args& args) {
  EngineOptions options =
      EngineOptionsFrom(MakeScanOptions(args), MakeAlgorithm(args));
  if (!args.cascade.empty()) options.cascade = args.cascade_spec;
  return options;
}

/// Metrics-registry key suffix: the explicit cascade string when one was
/// given, the legacy algorithm name otherwise.
std::string PipelineLabel(const Args& args) {
  return args.cascade.empty() ? args.algo : "cascade:" + args.cascade;
}

int CmdGenerate(const Args& args) {
  Dataset ds;
  if (args.kind == "projectile") {
    ds.items = MakeProjectilePointsDatabase(args.m, args.n, args.seed);
  } else if (args.kind == "heterogeneous") {
    ds.items = MakeHeterogeneousDatabase(args.m, args.n, args.seed);
  } else if (args.kind == "lightcurve") {
    ds = MakeLightCurveDataset((args.m + 2) / 3, args.n, args.seed);
    ds.items.resize(std::min(ds.items.size(), args.m));
    ds.labels.resize(ds.items.size());
    ds.names.resize(ds.items.size());
  } else if (args.kind == "table8") {
    // Concatenates all Table 8 stand-ins; mostly useful for inspection.
    for (const auto& spec : Table8Specs(0.05)) {
      const Dataset part = MakeTable8Dataset(spec);
      ds.items.insert(ds.items.end(), part.items.begin(), part.items.end());
      ds.labels.insert(ds.labels.end(), part.labels.begin(),
                       part.labels.end());
    }
  } else {
    std::fprintf(stderr,
                 "unknown --kind %s (use projectile|heterogeneous|"
                 "lightcurve|table8)\n",
                 args.kind.c_str());
    return 2;
  }
  if (args.out_path.empty()) {
    std::fprintf(stderr, "--out is required\n");
    return 2;
  }
  const Status ok = args.binary
                        ? SaveDatasetBinaryStatus(ds, args.out_path)
                        : SaveDatasetUcrStatus(ds, args.out_path);
  if (!ok.ok()) {
    std::fprintf(stderr, "write failed: %s: %s\n", args.out_path.c_str(),
                 ok.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu series of length %zu to %s\n", ds.size(),
              ds.length(), args.out_path.c_str());
  return 0;
}

int CmdInfo(const Dataset& db) {
  std::printf("series:  %zu\n", db.size());
  std::printf("length:  %zu\n", db.length());
  if (!db.labels.empty()) {
    int max_label = 0;
    for (int l : db.labels) max_label = std::max(max_label, l);
    std::printf("labels:  0..%d\n", max_label);
  }
  return 0;
}

/// Writes the registry to --metrics-json when requested. Returns false
/// (after a message on stderr) when the write fails.
bool WriteMetricsIfRequested(const Args& args,
                             const obs::MetricsRegistry& registry) {
  if (args.metrics_json_path.empty()) return true;
  const Status ok = registry.WriteJsonFile(args.metrics_json_path);
  if (!ok.ok()) {
    std::fprintf(stderr, "cannot write metrics to %s: %s\n",
                 args.metrics_json_path.c_str(), ok.ToString().c_str());
    return false;
  }
  return true;
}

int CmdSearch(const Args& args, const Dataset& db) {
  // The engine's leave-one-out scan excludes the query's own database slot
  // directly; result indexes are already in full-database space (no copy of
  // the database, no index remapping).
  const std::size_t qi = static_cast<std::size_t>(args.query_index);
  const FlatDataset flat = FlatDataset::FromDataset(db);
  const QueryEngine engine(flat, MakeEngineOptions(args));
  const Status valid = engine.ValidateQuery(db.items[qi]);
  if (!valid.ok()) {
    std::fprintf(stderr, "search failed: %s\n", valid.ToString().c_str());
    return 2;
  }
  obs::MetricsRegistry registry;
  obs::QueryMetrics* metrics =
      args.metrics_json_path.empty()
          ? nullptr
          : &registry.Get("search/" + PipelineLabel(args));
  const ScanResult r = engine.SearchLeaveOneOut(db.items[qi], qi, metrics);
  std::printf("best match: %d  distance=%.6f  shift=%d%s  steps=%llu\n",
              r.best_index, r.best_distance, r.best_shift,
              r.best_mirrored ? " (mirrored)" : "",
              static_cast<unsigned long long>(r.counter.total_steps()));
  if (!WriteMetricsIfRequested(args, registry)) return 1;
  return 0;
}

int CmdKnn(const Args& args, const Dataset& db) {
  const std::size_t qi = static_cast<std::size_t>(args.query_index);
  const FlatDataset flat = FlatDataset::FromDataset(db);
  const QueryEngine engine(flat, MakeEngineOptions(args));
  const Status valid = engine.ValidateQuery(db.items[qi]);
  if (!valid.ok()) {
    std::fprintf(stderr, "knn failed: %s\n", valid.ToString().c_str());
    return 2;
  }
  obs::MetricsRegistry registry;
  obs::QueryMetrics* metrics =
      args.metrics_json_path.empty()
          ? nullptr
          : &registry.Get("knn/" + PipelineLabel(args));
  const std::vector<Neighbor> knn =
      engine.KnnLeaveOneOut(db.items[qi], args.k, qi, nullptr, metrics);
  for (const Neighbor& nb : knn) {
    std::printf("%6d  distance=%.6f  shift=%d%s\n", nb.index, nb.distance,
                nb.shift, nb.mirrored ? " (mirrored)" : "");
  }
  if (!WriteMetricsIfRequested(args, registry)) return 1;
  return 0;
}

int CmdClassify(const Args& args, const Dataset& db) {
  if (db.labels.empty()) {
    std::fprintf(stderr, "database has no labels\n");
    return 2;
  }
  const ClassificationResult r = LeaveOneOutOneNnRotationInvariant(
      db, args.dtw ? DistanceKind::kDtw : DistanceKind::kEuclidean,
      args.band, MakeScanOptions(args).rotation, args.threads);
  std::printf("leave-one-out 1-NN error: %d / %d = %.2f%%\n", r.errors,
              r.total, 100.0 * r.error_rate());
  return 0;
}

int CmdIndexBuild(const Args& args) {
  if (args.db_path.empty() || args.index_path.empty()) {
    std::fprintf(stderr, "index build needs --db and --index\n");
    return 2;
  }
  Dataset db;
  if (!LoadDb(args.db_path, &db)) return 2;
  IndexBuildOptions build;
  build.sig_dims = args.dims;
  build.paa_dims = args.paa_dims;
  build.page_size_bytes = args.page_size;
  const Status ok = BuildIndexFile(db, build, args.index_path);
  if (!ok.ok()) {
    std::fprintf(stderr, "index build failed: %s\n", ok.ToString().c_str());
    return ok.code() == StatusCode::kInvalidArgument ? 2 : 1;
  }
  std::printf(
      "wrote %s: %zu series of length %zu, page_size=%zu, "
      "fft_dims=%zu, paa_dims=%zu%s\n",
      args.index_path.c_str(), db.size(), db.length(), args.page_size,
      args.dims, args.paa_dims, db.labels.empty() ? "" : ", labelled");
  return 0;
}

/// Directory of `path` for resolving manifest-relative shard files.
std::string DirName(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Parses the --tombstones comma-separated global-id list.
bool ParseIdList(const std::string& text, std::vector<std::uint64_t>* out) {
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string token =
        text.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    long v = 0;
    if (!ParseInt("--tombstones", token.c_str(), 0,
                  std::numeric_limits<long>::max(), &v)) {
      return false;
    }
    out->push_back(static_cast<std::uint64_t>(v));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return true;
}

int CmdIndexShardBuild(const Args& args) {
  if (args.db_path.empty() || args.manifest_path.empty()) {
    std::fprintf(stderr, "index shard-build needs --db and --manifest\n");
    return 2;
  }
  Dataset db;
  if (!LoadDb(args.db_path, &db)) return 2;
  const std::size_t shards = static_cast<std::size_t>(args.shards);
  if (db.size() < shards) {
    std::fprintf(stderr,
                 "--shards %zu exceeds the %zu series in %s (every shard "
                 "must be non-empty)\n",
                 shards, db.size(), args.db_path.c_str());
    return 2;
  }
  IndexBuildOptions build;
  build.sig_dims = args.dims;
  build.paa_dims = args.paa_dims;
  build.page_size_bytes = args.page_size;

  // Contiguous uneven split: base rows per shard, the first `extra`
  // shards take one more. Global ids are manifest order, so row g of the
  // database keeps global id g.
  const std::string dir = DirName(args.manifest_path);
  const std::size_t base = db.size() / shards;
  const std::size_t extra = db.size() % shards;
  storage::Manifest manifest;
  manifest.generation = 1;
  std::size_t row = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t count = base + (s < extra ? 1 : 0);
    Dataset part;
    part.items.assign(db.items.begin() + static_cast<std::ptrdiff_t>(row),
                      db.items.begin() +
                          static_cast<std::ptrdiff_t>(row + count));
    if (db.labels.size() == db.size()) {
      part.labels.assign(
          db.labels.begin() + static_cast<std::ptrdiff_t>(row),
          db.labels.begin() + static_cast<std::ptrdiff_t>(row + count));
    }
    const std::string shard_file = "shard-" + std::to_string(s) + ".ridx";
    const Status ok = BuildIndexFile(part, build, dir + "/" + shard_file);
    if (!ok.ok()) {
      std::fprintf(stderr, "shard %zu build failed: %s\n", s,
                   ok.ToString().c_str());
      return ok.code() == StatusCode::kInvalidArgument ? 2 : 1;
    }
    manifest.shards.push_back(storage::ManifestShard{
        shard_file, static_cast<std::uint64_t>(count),
        static_cast<std::uint64_t>(db.length())});
    row += count;
  }
  const Status published = storage::WriteManifest(manifest,
                                                  args.manifest_path);
  if (!published.ok()) {
    std::fprintf(stderr, "manifest write failed: %s\n",
                 published.ToString().c_str());
    return 1;
  }
  std::printf(
      "wrote %s: generation=1, %zu shards, %zu series of length %zu "
      "(split %zu+%zu)\n",
      args.manifest_path.c_str(), shards, db.size(), db.length(),
      base + (extra > 0 ? 1 : 0), base);
  return 0;
}

int CmdIndexCompact(const Args& args) {
  if (args.manifest_path.empty()) {
    std::fprintf(stderr, "index compact needs --manifest\n");
    return 2;
  }
  StatusOr<std::unique_ptr<ShardedIndex>> opened =
      ShardedIndex::Open(args.manifest_path);
  if (!opened.ok()) {
    std::fprintf(stderr, "cannot open manifest %s: %s\n",
                 args.manifest_path.c_str(),
                 opened.status().ToString().c_str());
    return 2;
  }
  ShardedIndex& index = **opened;

  std::size_t inserted = 0;
  if (!args.inserts_path.empty()) {
    Dataset more;
    if (!LoadDb(args.inserts_path, &more)) return 2;
    for (std::size_t i = 0; i < more.size(); ++i) {
      const int label = more.labels.size() == more.size() ? more.labels[i]
                                                          : 0;
      StatusOr<std::uint64_t> id = index.Insert(more.items[i], label);
      if (!id.ok()) {
        std::fprintf(stderr, "insert %zu from %s failed: %s\n", i,
                     args.inserts_path.c_str(),
                     id.status().ToString().c_str());
        return 2;
      }
      ++inserted;
    }
  }
  std::size_t removed = 0;
  if (!args.tombstones.empty()) {
    std::vector<std::uint64_t> ids;
    if (!ParseIdList(args.tombstones, &ids)) return 2;
    for (const std::uint64_t id : ids) {
      const Status gone = index.Remove(id);
      if (!gone.ok()) {
        std::fprintf(stderr, "tombstone %llu failed: %s\n",
                     static_cast<unsigned long long>(id),
                     gone.ToString().c_str());
        return 2;
      }
      ++removed;
    }
  }

  IndexBuildOptions build;
  build.sig_dims = args.dims;
  build.paa_dims = args.paa_dims;
  build.page_size_bytes = args.page_size;
  StatusOr<std::uint64_t> generation = index.Compact(build);
  if (!generation.ok()) {
    std::fprintf(stderr, "compaction failed: %s\n",
                 generation.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "compacted %s: generation=%llu, %zu shards, live=%zu "
      "(+%zu inserts, -%zu tombstones)\n",
      args.manifest_path.c_str(),
      static_cast<unsigned long long>(*generation), index.shard_count(),
      index.live_size(), inserted, removed);
  return 0;
}

int CmdIndexSearch(const Args& args) {
  if (args.index_path.empty() && args.backend == "file") {
    std::fprintf(stderr, "index search --backend file needs --index\n");
    return 2;
  }
  RotationInvariantIndex::Options opts;
  opts.dims = args.dtw ? args.paa_dims : args.dims;
  opts.kind = args.dtw ? DistanceKind::kDtw : DistanceKind::kEuclidean;
  opts.band = args.band;
  opts.rotation.mirror = args.mirror;
  opts.rotation.max_shift = args.max_shift;
  opts.page_size_bytes = args.page_size;

  // file: open the paged container; memory/simulated: rebuild from --db
  // (they share the in-RAM build — simulated adds the paper's page
  // accounting, memory reports no I/O). All three answer bit-identically.
  std::unique_ptr<RotationInvariantIndex> index;
  Dataset db;
  if (args.backend == "file") {
    const storage::EvictionPolicy eviction =
        args.eviction == "clock" ? storage::EvictionPolicy::kClock
                                 : storage::EvictionPolicy::kLru;
    StatusOr<std::unique_ptr<RotationInvariantIndex>> opened =
        RotationInvariantIndex::OpenFromFile(args.index_path, opts,
                                             args.pool_pages, eviction);
    if (!opened.ok()) {
      std::fprintf(stderr, "cannot open index %s: %s\n",
                   args.index_path.c_str(),
                   opened.status().ToString().c_str());
      return 2;
    }
    index = *std::move(opened);
  } else {
    if (args.db_path.empty()) {
      std::fprintf(stderr, "index search --backend %s needs --db\n",
                   args.backend.c_str());
      return 2;
    }
    if (!LoadDb(args.db_path, &db)) return 2;
    StatusOr<std::unique_ptr<RotationInvariantIndex>> built =
        RotationInvariantIndex::Create(db.items, opts);
    if (!built.ok()) {
      std::fprintf(stderr, "cannot build index from %s: %s\n",
                   args.db_path.c_str(), built.status().ToString().c_str());
      return 2;
    }
    index = *std::move(built);
  }

  // The query comes from --query-db when given (the normal case: querying
  // an index with fresh data), else from the indexed objects themselves
  // (self-match at distance 0 — useful as a smoke test).
  Series query;
  const std::size_t qi = static_cast<std::size_t>(args.query_index);
  if (!args.query_db_path.empty()) {
    Dataset qdb;
    if (!LoadDb(args.query_db_path, &qdb)) return 2;
    if (qi >= qdb.size()) {
      std::fprintf(stderr,
                   "--query-index %d is out of range: %s has %zu series\n",
                   args.query_index, args.query_db_path.c_str(), qdb.size());
      return 2;
    }
    query = std::move(qdb.items[qi]);
  } else {
    if (qi >= index->size()) {
      std::fprintf(stderr,
                   "--query-index %d is out of range: index has %zu series\n",
                   args.query_index, index->size());
      return 2;
    }
    storage::FetchStats io;
    StatusOr<storage::SeriesHandle> handle =
        index->backend().TryFetch(qi, &io);
    if (!handle.ok()) {
      std::fprintf(stderr, "cannot fetch query %zu: %s\n", qi,
                   handle.status().ToString().c_str());
      return 1;
    }
    query.assign(handle->data(), handle->data() + handle->length());
  }
  if (query.size() != index->backend().length()) {
    std::fprintf(stderr, "query has length %zu, indexed objects %zu\n",
                 query.size(), index->backend().length());
    return 2;
  }

  obs::MetricsRegistry registry;
  obs::QueryMetrics* metrics =
      args.metrics_json_path.empty()
          ? nullptr
          : &registry.Get("index-search/" + args.backend);
  RotationInvariantIndex::Result r;
  if (args.k <= 1) {
    r = index->NearestNeighbor(query, metrics);
    std::printf("match: rank=0 index=%d distance=%.6f\n", r.best_index,
                r.best_distance);
  } else {
    const std::vector<RotationInvariantIndex::KnnEntry> knn =
        index->KNearestNeighbors(query, args.k, &r, metrics);
    for (std::size_t rank = 0; rank < knn.size(); ++rank) {
      std::printf("match: rank=%zu index=%d distance=%.6f\n", rank,
                  knn[rank].index, knn[rank].distance);
    }
  }

  // The io: line reports what the USER asked for: "memory" shares the
  // in-RAM build with "simulated" but promises no I/O accounting, so it
  // prints none (keeping the match: lines the only backend-independent
  // output is what the CI roundtrip diff relies on).
  const storage::StorageBackend& backend = index->backend();
  if (args.backend == "file") {
    const auto& file_backend =
        static_cast<const storage::FileBackend&>(backend);
    const storage::PoolCounters pool = file_backend.pool().counters();
    std::printf("io: backend=%s fetches=%llu pages_read=%llu "
                "pool_hits=%llu pool_evictions=%llu bytes_read=%llu\n",
                backend.name(),
                static_cast<unsigned long long>(r.object_fetches),
                static_cast<unsigned long long>(r.page_reads),
                static_cast<unsigned long long>(pool.hits),
                static_cast<unsigned long long>(pool.evictions),
                static_cast<unsigned long long>(pool.bytes_read));
    const Status io = file_backend.error();
    if (!io.ok()) {
      std::fprintf(stderr, "storage error during search: %s\n",
                   io.ToString().c_str());
      return 1;
    }
  } else if (args.backend == "simulated") {
    std::printf("io: backend=%s fetches=%llu pages_read=%llu "
                "fetch_fraction=%.4f\n",
                backend.name(),
                static_cast<unsigned long long>(r.object_fetches),
                static_cast<unsigned long long>(r.page_reads),
                r.fetch_fraction);
  }
  if (!WriteMetricsIfRequested(args, registry)) return 1;
  return 0;
}

int CmdMotif(const Args& args, const Dataset& db, bool discord) {
  if (db.size() < 2) {
    std::fprintf(stderr, "motif/discord mining needs at least 2 series\n");
    return 2;
  }
  MiningOptions options;
  options.kind = args.dtw ? DistanceKind::kDtw : DistanceKind::kEuclidean;
  options.band = args.band;
  options.rotation.mirror = args.mirror;
  options.rotation.max_shift = args.max_shift;
  if (discord) {
    const DiscordResult r = FindDiscord(db.items, options);
    std::printf("discord: %d  nn=%d  nn-distance=%.6f\n", r.index,
                r.nearest_neighbor, r.distance);
  } else {
    const MotifResult r = FindMotifPair(db.items, options);
    std::printf("motif pair: (%d, %d)  distance=%.6f  shift=%d%s\n", r.first,
                r.second, r.distance, r.shift,
                r.mirrored ? " (mirrored)" : "");
  }
  return 0;
}

/// Set by the SIGINT/SIGTERM handler; polled by the serve read loop.
volatile std::sig_atomic_t g_shutdown_requested = 0;

void HandleShutdownSignal(int /*signum*/) { g_shutdown_requested = 1; }

/// Installs `HandleShutdownSignal` WITHOUT SA_RESTART: the blocking
/// read(2) on stdin must fail with EINTR so the serve loop can notice the
/// signal and begin the drain instead of sleeping until the next request.
bool InstallShutdownHandlers() {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleShutdownSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  return sigaction(SIGINT, &action, nullptr) == 0 &&
         sigaction(SIGTERM, &action, nullptr) == 0;
}

/// Sharded-serve configuration shared by startup and `reload`.
ShardedOptions MakeShardedOptions(const Args& args) {
  ShardedOptions options;
  options.pool_pages = args.pool_pages;
  options.eviction = args.eviction == "clock"
                         ? storage::EvictionPolicy::kClock
                         : storage::EvictionPolicy::kLru;
  options.tuning.retry.max_attempts = args.retry_attempts;
  options.tuning.faults.seed = args.fault_seed;
  options.tuning.faults.transient_read_prob = args.fault_transient_prob;
  options.tuning.faults.torn_page_prob = args.fault_torn_prob;
  options.tuning.faults.latency_spike_prob = args.fault_latency_prob;
  options.engine.kind =
      args.dtw ? DistanceKind::kDtw : DistanceKind::kEuclidean;
  options.engine.band = args.band;
  options.engine.rotation.mirror = args.mirror;
  options.engine.rotation.max_shift = args.max_shift;
  return options;
}

int CmdServe(const Args& args) {
  if (args.index_path.empty() == args.manifest_path.empty()) {
    std::fprintf(stderr,
                 "serve needs exactly one of --index or --manifest\n");
    return 2;
  }

  // Server-mode contract: a fatal open failure is exit 1, not 2 — the
  // flags were fine, the storage was not.
  std::shared_ptr<const QueryEngine> engine;
  std::uint64_t generation = 0;
  if (!args.manifest_path.empty()) {
    StatusOr<std::unique_ptr<ShardedIndex>> sharded =
        ShardedIndex::Open(args.manifest_path, MakeShardedOptions(args));
    if (!sharded.ok()) {
      std::fprintf(stderr, "serve: cannot open manifest %s: %s\n",
                   args.manifest_path.c_str(),
                   sharded.status().ToString().c_str());
      return 1;
    }
    // The engine owns its snapshot (shards included); the ShardedIndex
    // handle itself is not needed once the engine is built — reloads
    // re-open the manifest from scratch.
    engine = (*sharded)->SnapshotEngine();
    generation = (*sharded)->generation();
  } else {
    EngineOptions options;
    options.kind = args.dtw ? DistanceKind::kDtw : DistanceKind::kEuclidean;
    options.band = args.band;
    options.rotation.mirror = args.mirror;
    options.rotation.max_shift = args.max_shift;
    options.storage.backend = storage::BackendKind::kFile;
    options.storage.index_path = args.index_path;
    options.storage.pool_pages = args.pool_pages;
    options.storage.eviction = args.eviction == "clock"
                                   ? storage::EvictionPolicy::kClock
                                   : storage::EvictionPolicy::kLru;
    options.storage.retry.max_attempts = args.retry_attempts;
    options.storage.faults.seed = args.fault_seed;
    options.storage.faults.transient_read_prob = args.fault_transient_prob;
    options.storage.faults.torn_page_prob = args.fault_torn_prob;
    options.storage.faults.latency_spike_prob = args.fault_latency_prob;

    StatusOr<std::unique_ptr<QueryEngine>> opened =
        QueryEngine::Open(options);
    if (!opened.ok()) {
      std::fprintf(stderr, "serve: cannot open index %s: %s\n",
                   args.index_path.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    engine = std::shared_ptr<const QueryEngine>(*std::move(opened));
  }

  serve::ServerOptions server_options;
  server_options.num_workers = args.workers;
  server_options.queue_capacity = args.queue_capacity;
  server_options.default_deadline = std::chrono::nanoseconds(
      static_cast<std::int64_t>(args.default_deadline_ms * 1'000'000.0));
  server_options.drain_deadline = std::chrono::nanoseconds(
      static_cast<std::int64_t>(args.drain_deadline_ms * 1'000'000.0));
  server_options.degrade_under_overload = !args.no_degrade;
  server_options.degraded_k = args.degraded_k;

  serve::QueryServer server(std::move(engine), server_options, generation);
  server.Start();

  // Responses arrive on worker threads; rejections are printed inline from
  // this thread. One mutex keeps the output line-atomic either way.
  std::mutex stdout_mutex;
  const auto print_line = [&stdout_mutex](const std::string& line) {
    std::lock_guard<std::mutex> lock(stdout_mutex);
    std::fputs(line.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  };
  const auto on_done = [&print_line](const serve::Request& request,
                                     const serve::Response& response) {
    print_line(serve::FormatResponse(request, response));
  };

  if (!InstallShutdownHandlers()) {
    std::fprintf(stderr, "serve: cannot install signal handlers\n");
    return 1;
  }

  // Raw read(2) loop, not iostreams: the signal handler interrupts the
  // syscall (EINTR) so a SIGTERM with no traffic still drains promptly.
  std::string current_manifest = args.manifest_path;
  std::string pending;
  char buf[4096];
  bool eof = false;
  while (!eof && g_shutdown_requested == 0) {
    const ssize_t got = read(STDIN_FILENO, buf, sizeof(buf));
    if (got < 0) {
      if (errno == EINTR) continue;  // Re-check g_shutdown_requested.
      std::fprintf(stderr, "serve: stdin read failed: %s\n",
                   std::strerror(errno));
      break;
    }
    if (got == 0) {
      eof = true;
      if (pending.empty()) break;
      pending.push_back('\n');  // Flush an unterminated final line.
    } else {
      pending.append(buf, static_cast<std::size_t>(got));
    }
    std::size_t start = 0;
    for (std::size_t nl = pending.find('\n', start);
         nl != std::string::npos; nl = pending.find('\n', start)) {
      const std::string_view line(pending.data() + start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      // Admin verbs never enter the query queue: `reload` re-opens the
      // manifest and swaps the engine under the server's drain barrier.
      if (serve::IsAdminRequest(line)) {
        const auto reload_err = [&print_line](const Status& status) {
          print_line("ERR " +
                     std::string(StatusCodeName(status.code())) +
                     " op=reload msg=" + status.message());
        };
        StatusOr<serve::AdminRequest> admin =
            serve::ParseAdminRequest(line);
        if (!admin.ok()) {
          reload_err(admin.status());
          continue;
        }
        if (current_manifest.empty() && admin->path.empty()) {
          reload_err(Status::InvalidArgument(
              "reload needs a manifest (server was started with --index; "
              "pass `reload <manifest>` or restart with --manifest)"));
          continue;
        }
        const std::string target =
            admin->path.empty() ? current_manifest : admin->path;
        StatusOr<std::unique_ptr<ShardedIndex>> next =
            ShardedIndex::Open(target, MakeShardedOptions(args));
        if (!next.ok()) {
          reload_err(next.status());
          continue;
        }
        const std::uint64_t next_generation = (*next)->generation();
        const Status swapped =
            server.SwapEngine((*next)->SnapshotEngine(), next_generation);
        if (!swapped.ok()) {
          reload_err(swapped);
          continue;
        }
        current_manifest = target;
        print_line("OK op=reload generation=" +
                   std::to_string(next_generation));
        continue;
      }
      StatusOr<serve::Request> request = serve::ParseRequest(line);
      if (!request.ok()) {
        print_line("ERR " +
                   std::string(StatusCodeName(request.status().code())) +
                   " msg=" + request.status().message());
        continue;
      }
      Status admitted = server.Submit(*request, on_done);
      if (!admitted.ok()) {
        serve::Response rejected;
        rejected.status = admitted;
        print_line(serve::FormatResponse(*request, rejected));
      }
    }
    pending.erase(0, start);
  }

  const bool clean = server.Shutdown();
  const serve::ServerStats stats = server.stats();
  const std::string report = stats.ToJson();
  if (!args.metrics_json_path.empty()) {
    std::FILE* f = std::fopen(args.metrics_json_path.c_str(), "w");
    if (f == nullptr || std::fputs(report.c_str(), f) == EOF ||
        std::fputc('\n', f) == EOF || std::fclose(f) != 0) {
      if (f != nullptr) std::fclose(f);
      std::fprintf(stderr, "serve: cannot write %s\n",
                   args.metrics_json_path.c_str());
      return 1;
    }
  } else {
    std::fprintf(stderr, "%s\n", report.c_str());
  }
  if (!clean) {
    std::fprintf(stderr,
                 "serve: drain deadline expired; %llu in-flight queries "
                 "were hard-cancelled\n",
                 static_cast<unsigned long long>(stats.cancelled));
  }
  // Shutdown-by-signal or by EOF is the server working as designed: the
  // drain ran and every admitted request got a typed response. Exit 0.
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Environment is configuration too: an unknown ROTIND_SIMD value is the
  // same class of operator error as a bad flag, so it gets the same typed
  // message and usage exit code (2) — before any kernel dispatch can
  // resolve (and hard-abort on) the bad override.
  {
    rotind::Status simd_env = rotind::simd::ValidateEnvOverride();
    if (!simd_env.ok()) {
      std::fprintf(stderr, "%s\n", simd_env.ToString().c_str());
      return 2;
    }
  }

  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage();

  if (args.command == "version") {
    // The dispatched kernel tier is part of the build's identity: two runs
    // can only be compared apples-to-apples when both report the same tier.
    std::printf("rotind 1.0.0\nsimd: %s\n", rotind::simd::ActiveTierName());
    return 0;
  }
  if (args.command == "generate") return CmdGenerate(args);
  if (args.command == "serve") return CmdServe(args);
  if (args.command == "index") {
    if (args.subcommand == "build") return CmdIndexBuild(args);
    if (args.subcommand == "shard-build") return CmdIndexShardBuild(args);
    if (args.subcommand == "compact") return CmdIndexCompact(args);
    return CmdIndexSearch(args);
  }

  if (args.command != "info" && args.command != "search" &&
      args.command != "knn" && args.command != "classify" &&
      args.command != "motif" && args.command != "discord") {
    return Usage();
  }

  if (args.db_path.empty()) {
    std::fprintf(stderr, "--db is required for '%s'\n", args.command.c_str());
    return 2;
  }
  Dataset db;
  if (!LoadDb(args.db_path, &db)) return 2;
  if (!ValidateArgsAgainstDb(args, db)) return 2;

  if (args.command == "info") return CmdInfo(db);
  if (args.command == "search") return CmdSearch(args, db);
  if (args.command == "knn") return CmdKnn(args, db);
  if (args.command == "classify") return CmdClassify(args, db);
  if (args.command == "motif") return CmdMotif(args, db, /*discord=*/false);
  return CmdMotif(args, db, /*discord=*/true);
}
