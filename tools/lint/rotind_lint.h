#ifndef ROTIND_TOOLS_LINT_ROTIND_LINT_H_
#define ROTIND_TOOLS_LINT_ROTIND_LINT_H_

/// rotind_lint — the project-specific checker for the architecture the
/// compiler cannot express. Four families of rules:
///
///  1. Layering. `src/` is a DAG of modules
///     (core <- simd <- distance <- envelope <- fourier <- search <- index,
///     with cluster/obs/io/shape as low-level leaves and datasets/eval/
///     mining/stream as top consumers). An `#include "src/<dep>/..."` from a
///     module not permitted to depend on <dep> is an error: layering
///     violations are how envelope code grows a search dependency and the
///     build becomes un-refactorable.
///  2. Error-handling hygiene. Every `Status`/`StatusOr`-returning
///     declaration in a header must carry `[[nodiscard]]` (the class-level
///     attribute covers most call sites, but the declaration-site attribute
///     survives aliasing and documents intent), and `.value()` is banned
///     outside `tests/` — production code must branch on `ok()` instead of
///     asserting success.
///  3. Kernel hygiene. The numeric kernels (core, simd, distance, envelope,
///     fourier, search, index) may not use raw `new`/`delete` (RAII only;
///     `= delete`d functions are fine) nor `rand()` (all randomness goes
///     through the seeded `rotind::Rng` so experiments stay reproducible).
///     Additionally, x86 intrinsics (the *intrin.h headers, `_mm*` calls,
///     `__m*` types) are confined to src/simd/ — everything else calls
///     through `simd::KernelTable`, which is how the bit-exact scalar twin
///     and the single dispatch point stay enforceable.
///  4. Process. Every `tests/*_test.cc` must be registered in
///     `tests/CMakeLists.txt` (the list is deliberately explicit, not a
///     glob), and every clang-tidy suppression comment must carry a
///     written reason ("NOLINT(check): why").
///  5. Lock discipline. Concurrency in `src/` goes through the annotated
///     primitives in src/core/sync.h so Clang's thread-safety analysis can
///     prove the locking: raw std::mutex / std::lock_guard /
///     std::unique_lock / std::condition_variable (and their includes) are
///     banned outside that header; in any class that owns a rotind::Mutex,
///     every member must carry ROTIND_GUARDED_BY / ROTIND_PT_GUARDED_BY,
///     be const, or document why not with `// SYNC-EXEMPT: <reason>`; and
///     `std::atomic` — invisible to the analysis — is confined to an
///     explicit per-file allowlist.
///
/// The checks run over an in-memory `SourceFile` list so the unit tests
/// can seed violations without touching the filesystem; `LintRepository`
/// is the filesystem entry point used by the CLI and CI.

#include <string>
#include <vector>

#include "src/core/status.h"

namespace rotind {
namespace lint {

/// One file to lint: a repo-relative path (forward slashes) plus content.
struct SourceFile {
  std::string path;
  std::string content;
};

/// One rule violation. `rule` is a stable machine-readable id; `message`
/// explains the violation and how to fix it.
struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;
};

/// Replaces comments, string literals, and character literals with spaces
/// (newlines preserved), so token rules cannot fire inside prose.
[[nodiscard]] std::string StripCommentsAndStrings(const std::string& content);

/// Rule 1: the module layering DAG over `src/`.
[[nodiscard]] std::vector<Finding> CheckLayering(
    const std::vector<SourceFile>& files);

/// Rule 2a: `[[nodiscard]]` on Status/StatusOr-returning declarations in
/// headers.
[[nodiscard]] std::vector<Finding> CheckNodiscard(
    const std::vector<SourceFile>& files);

/// Rule 2b: no `.value()` outside tests/.
[[nodiscard]] std::vector<Finding> CheckUncheckedValue(
    const std::vector<SourceFile>& files);

/// Rule 3: no raw new/delete/rand() in kernel directories.
[[nodiscard]] std::vector<Finding> CheckKernelHygiene(
    const std::vector<SourceFile>& files);

/// Rule 3b: x86 intrinsics (*intrin.h includes, _mm*/__m* tokens) only
/// inside src/simd/.
[[nodiscard]] std::vector<Finding> CheckIntrinsicsOutsideSimd(
    const std::vector<SourceFile>& files);

/// Rule 4a: every tests/*_test.cc appears in tests/CMakeLists.txt.
[[nodiscard]] std::vector<Finding> CheckTestRegistration(
    const std::vector<SourceFile>& files);

/// Rule 4b: every clang-tidy suppression comment carries a reason.
[[nodiscard]] std::vector<Finding> CheckNolintReasons(
    const std::vector<SourceFile>& files);

/// Rule 5a: raw std sync primitives (mutex/lock/condition_variable types
/// and their headers) banned in src/ outside src/core/sync.h.
[[nodiscard]] std::vector<Finding> CheckSyncPrimitives(
    const std::vector<SourceFile>& files);

/// Rule 5b: in src/ classes owning a rotind::Mutex, every member is
/// annotated (ROTIND_GUARDED_BY / ROTIND_PT_GUARDED_BY), const, or
/// carries a `// SYNC-EXEMPT: <reason>` comment.
[[nodiscard]] std::vector<Finding> CheckGuardedMembers(
    const std::vector<SourceFile>& files);

/// Rule 5c: std::atomic only in the per-file allowlist (atomics bypass
/// the thread-safety analysis, so each use needs a standing justification).
[[nodiscard]] std::vector<Finding> CheckAtomicAllowlist(
    const std::vector<SourceFile>& files);

/// Rule 6: direct libc file mutation (fopen / rename, plain or
/// std-qualified) banned in src/ outside src/io/ + src/storage/ — file
/// writes go through io::WriteStringToFile, atomic publication through
/// storage::WriteManifest, so crash safety is auditable in one place.
/// Member calls (x.rename(...)) and non-std qualified names are exempt.
[[nodiscard]] std::vector<Finding> CheckRawFileMutation(
    const std::vector<SourceFile>& files);

/// All rules, findings ordered by (file, line).
[[nodiscard]] std::vector<Finding> RunAllChecks(
    const std::vector<SourceFile>& files);

/// Reads the lintable tree (src/, tools/, bench/, tests/, examples/ —
/// *.h, *.cc, *.cpp — plus tests/CMakeLists.txt) under `repo_root`.
[[nodiscard]] StatusOr<std::vector<SourceFile>> LoadSourceTree(
    const std::string& repo_root);

/// Filesystem entry point: LoadSourceTree + RunAllChecks.
[[nodiscard]] StatusOr<std::vector<Finding>> LintRepository(
    const std::string& repo_root);

}  // namespace lint
}  // namespace rotind

#endif  // ROTIND_TOOLS_LINT_ROTIND_LINT_H_
