#include "tools/lint/rotind_lint.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace rotind {
namespace lint {
namespace {

namespace fs = std::filesystem;

/// The module layering DAG: which `src/` modules each module may include.
/// A module may always include itself; `core` is the shared foundation and
/// `simd` sits just above it (the dispatched kernel tables: distance/
/// envelope/search/obs -> simd -> core). Order of tiers (low to high):
/// core -> simd -> {cluster, distance, obs, io, shape} ->
/// fourier/envelope/lightcurve -> search/stream/datasets ->
/// index/mining/eval.
const std::map<std::string, std::set<std::string>>& AllowedDeps() {
  static const std::map<std::string, std::set<std::string>> kDeps = {
      {"core", {}},
      {"simd", {"core"}},
      {"cluster", {"core"}},
      {"distance", {"core", "simd"}},
      {"obs", {"core", "io", "simd"}},
      {"io", {"core"}},
      {"storage", {"core", "io"}},
      {"shape", {"core"}},
      {"fourier", {"core", "distance"}},
      {"envelope", {"core", "cluster", "distance", "simd"}},
      {"lightcurve", {"core", "shape"}},
      {"datasets", {"core", "shape", "lightcurve"}},
      {"stream", {"core", "cluster", "distance", "envelope"}},
      {"search", {"core", "cluster", "distance", "envelope", "fourier",
                  "obs", "simd", "storage"}},
      {"serve", {"core", "index", "obs", "search", "storage"}},
      {"index", {"core", "cluster", "distance", "envelope", "fourier", "obs",
                 "search", "storage"}},
      {"mining", {"core", "distance", "envelope", "fourier", "search"}},
      {"eval", {"core", "distance", "envelope", "fourier", "obs", "search"}},
  };
  return kDeps;
}

/// Directories whose code is a numeric kernel: tight loops, RAII-only
/// memory, reproducible randomness.
bool IsKernelPath(const std::string& path) {
  for (const char* dir : {"src/core/", "src/simd/", "src/distance/",
                          "src/envelope/", "src/fourier/", "src/search/",
                          "src/index/"}) {
    if (path.rfind(dir, 0) == 0) return true;
  }
  return false;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// If `path` is `src/<module>/...`, returns `<module>`; else "".
std::string ModuleOf(const std::string& path) {
  if (!StartsWith(path, "src/")) return "";
  const std::size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return "";
  return path.substr(4, slash - 4);
}

int LineOfOffset(const std::string& text, std::size_t offset) {
  return 1 + static_cast<int>(
                 std::count(text.begin(), text.begin() +
                            static_cast<std::ptrdiff_t>(offset), '\n'));
}

/// One pass over the file, classifying each byte as code, comment, or
/// literal. Code survives iff `!keep_comments`, comments iff
/// `keep_comments`, string/char literal bodies iff `keep_strings` (which
/// the layering check needs: include paths ARE string literals). Dropped
/// bytes become spaces; newlines always survive so line numbers stay
/// stable.
std::string FilterSource(const std::string& content, bool keep_comments,
                         bool keep_strings) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  std::string out(content.size(), ' ');
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      out[i] = '\n';
      if (state == State::kLineComment) state = State::kCode;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;  // also skip the second '/'
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"' && i > 0 && content[i - 1] == 'R' &&
                   (i < 2 || (std::isalnum(static_cast<unsigned char>(
                                  content[i - 2])) == 0 &&
                              content[i - 2] != '_'))) {
          // Raw string literal R"delim(...)delim": no escapes apply and it
          // may contain bare quotes, so a dedicated scan to its closer.
          const std::size_t open = content.find('(', i + 1);
          if (open == std::string::npos) break;  // ill-formed; give up
          const std::string closer =
              ")" + content.substr(i + 1, open - i - 1) + "\"";
          std::size_t close = content.find(closer, open + 1);
          if (close == std::string::npos) close = content.size();
          const std::size_t stop =
              std::min(content.size(), close + closer.size());
          if (!keep_comments) out[i] = c;
          for (std::size_t j = i + 1; j < stop; ++j) {
            if (content[j] == '\n') {
              out[j] = '\n';
            } else if (keep_strings) {
              out[j] = content[j];
            }
          }
          if (!keep_comments && stop <= content.size() && stop > 0 &&
              content[stop - 1] == '"') {
            out[stop - 1] = '"';
          }
          i = stop - 1;
        } else if (c == '"') {
          state = State::kString;
          if (!keep_comments) out[i] = c;
        } else if (c == '\'') {
          state = State::kChar;
          if (!keep_comments) out[i] = c;
        } else if (!keep_comments) {
          out[i] = c;
        }
        break;
      case State::kLineComment:
        if (keep_comments) out[i] = c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else if (keep_comments) {
          out[i] = c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          if (keep_strings) out[i] = c;
          ++i;  // skip the escaped character
          if (i < content.size()) {
            if (content[i] == '\n') {
              out[i] = '\n';
            } else if (keep_strings) {
              out[i] = content[i];
            }
          }
        } else if (c == '"') {
          state = State::kCode;
          if (!keep_comments) out[i] = c;
        } else if (keep_strings) {
          out[i] = c;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          if (keep_strings) out[i] = c;
          ++i;
          if (keep_strings && i < content.size() && content[i] != '\n') {
            out[i] = content[i];
          }
        } else if (c == '\'') {
          state = State::kCode;
          if (!keep_comments) out[i] = c;
        } else if (keep_strings) {
          out[i] = c;
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(text);
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void SortFindings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
}

}  // namespace

std::string StripCommentsAndStrings(const std::string& content) {
  return FilterSource(content, /*keep_comments=*/false,
                      /*keep_strings=*/false);
}

std::vector<Finding> CheckLayering(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  static const std::regex kInclude(
      R"(^\s*#\s*include\s+"src/([A-Za-z_0-9]+)/)");
  for (const SourceFile& file : files) {
    const std::string module = ModuleOf(file.path);
    if (module.empty()) continue;  // only src/ is layered
    const auto it = AllowedDeps().find(module);
    if (it == AllowedDeps().end()) {
      findings.push_back(
          {"layering", file.path, 1,
           "module '" + module +
               "' is not in the layer DAG; add it to AllowedDeps() in "
               "tools/lint/rotind_lint.cc with an explicit dependency set"});
      continue;
    }
    // Comments stripped, strings KEPT: the include path is a string
    // literal, but a commented-out include must not count.
    const std::vector<std::string> lines = SplitLines(FilterSource(
        file.content, /*keep_comments=*/false, /*keep_strings=*/true));
    for (std::size_t i = 0; i < lines.size(); ++i) {
      std::smatch m;
      if (!std::regex_search(lines[i], m, kInclude)) continue;
      const std::string target = m[1].str();
      if (target == module || it->second.count(target) != 0) continue;
      findings.push_back(
          {"layering", file.path, static_cast<int>(i + 1),
           "module '" + module + "' may not include src/" + target +
               "/ (allowed layers are lower in the DAG); move the shared "
               "code down a layer or invert the dependency"});
    }
  }
  return findings;
}

std::vector<Finding> CheckNodiscard(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  // A declaration line returning Status or StatusOr<...>. `Status::` never
  // matches (no whitespace before the callee name), so `return
  // Status::InvalidArgument(...)` is not a declaration.
  static const std::regex kDecl(
      R"(^\s*(?:\[\[nodiscard\]\]\s*)?(?:friend\s+|static\s+|virtual\s+)*)"
      R"((?:Status|StatusOr\s*<[^;{}()]*>)\s+[A-Za-z_]\w*\s*\()");
  // The wrapped form: the return type alone on one line, the declarator
  // opening on the next (how clang-format breaks a long declaration).
  static const std::regex kRetTypeOnly(
      R"(^\s*(?:\[\[nodiscard\]\]\s*)?(?:friend\s+|static\s+|virtual\s+)*)"
      R"((?:Status|StatusOr\s*<[^;{}()]*>)\s*$)");
  static const std::regex kDeclaratorNext(R"(^\s*[A-Za-z_]\w*\s*\()");
  for (const SourceFile& file : files) {
    if (!EndsWith(file.path, ".h")) continue;
    const std::vector<std::string> lines =
        SplitLines(StripCommentsAndStrings(file.content));
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const bool same_line = std::regex_search(lines[i], kDecl);
      const bool wrapped = !same_line && i + 1 < lines.size() &&
                           std::regex_search(lines[i], kRetTypeOnly) &&
                           std::regex_search(lines[i + 1], kDeclaratorNext);
      if (!same_line && !wrapped) continue;
      const bool attributed =
          lines[i].find("[[nodiscard]]") != std::string::npos ||
          (i > 0 && lines[i - 1].find("[[nodiscard]]") != std::string::npos);
      if (attributed) continue;
      findings.push_back(
          {"nodiscard", file.path, static_cast<int>(i + 1),
           "Status/StatusOr-returning declaration must be [[nodiscard]]: a "
           "silently dropped error Status is how corrupt inputs turn into "
           "wrong nearest neighbors"});
    }
  }
  return findings;
}

std::vector<Finding> CheckUncheckedValue(
    const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  static const std::regex kValue(R"([.>]\s*value\s*\(\s*\))");
  for (const SourceFile& file : files) {
    if (StartsWith(file.path, "tests/")) continue;  // asserting is the job
    const std::string code = StripCommentsAndStrings(file.content);
    for (auto it = std::sregex_iterator(code.begin(), code.end(), kValue);
         it != std::sregex_iterator(); ++it) {
      findings.push_back(
          {"unchecked-value", file.path,
           LineOfOffset(code, static_cast<std::size_t>(it->position())),
           ".value() asserts success and is reserved for tests/; "
           "production code must branch on ok() and propagate the Status"});
    }
  }
  return findings;
}

std::vector<Finding> CheckKernelHygiene(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  static const std::regex kToken(R"(\b(new|delete|rand)\b)");
  for (const SourceFile& file : files) {
    if (!IsKernelPath(file.path)) continue;
    const std::string code = StripCommentsAndStrings(file.content);
    for (auto it = std::sregex_iterator(code.begin(), code.end(), kToken);
         it != std::sregex_iterator(); ++it) {
      const std::string token = (*it)[1].str();
      const std::size_t pos = static_cast<std::size_t>(it->position());
      if (token == "rand") {
        // Only the C library call `rand(...)`; identifiers merely
        // containing "rand" are excluded by the word boundary, and
        // qualified spellings like std::rand still match here.
        std::size_t after = pos + token.size();
        while (after < code.size() &&
               std::isspace(static_cast<unsigned char>(code[after]))) {
          ++after;
        }
        if (after >= code.size() || code[after] != '(') continue;
        findings.push_back(
            {"kernel-hygiene", file.path, LineOfOffset(code, pos),
             "rand() in a kernel directory; use the seeded rotind::Rng so "
             "every experiment is reproducible from its seed"});
        continue;
      }
      if (token == "delete") {
        // `= delete`d special members are declarations, not deallocation.
        std::size_t before = pos;
        while (before > 0 && std::isspace(static_cast<unsigned char>(
                                 code[before - 1]))) {
          --before;
        }
        if (before > 0 && code[before - 1] == '=') continue;
      }
      findings.push_back(
          {"kernel-hygiene", file.path, LineOfOffset(code, pos),
           "raw '" + token +
               "' in a kernel directory; kernels are RAII-only — use "
               "std::vector / std::unique_ptr / std::make_unique"});
    }
  }
  return findings;
}

std::vector<Finding> CheckIntrinsicsOutsideSimd(
    const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  // x86 SIMD surfaces: the umbrella/vendor intrinsic headers, the _mm*
  // intrinsic call prefixes, and the __m* register types. Everything else
  // must go through the simd::KernelTable so scalar parity, dispatch, and
  // the no-FMA build flags stay enforceable in ONE directory.
  static const std::regex kHeader(
      R"(^\s*#\s*include\s*[<"][A-Za-z0-9_/]*)"
      R"((immintrin|x86intrin|[a-z]mmintrin|avx[0-9a-z]*intrin)\.h[>"])");
  static const std::regex kToken(
      R"(\b_mm(256|512)?_[A-Za-z0-9_]+|\b__m(64|128|256|512)[di]?\b)");
  for (const SourceFile& file : files) {
    if (StartsWith(file.path, "src/simd/")) continue;
    // Includes are string-ish tokens; keep strings for the header scan.
    const std::string with_strings = FilterSource(
        file.content, /*keep_comments=*/false, /*keep_strings=*/true);
    const std::vector<std::string> lines = SplitLines(with_strings);
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (!std::regex_search(lines[i], kHeader)) continue;
      findings.push_back(
          {"intrinsics-outside-simd", file.path, static_cast<int>(i + 1),
           "intrinsic header included outside src/simd/; vector code lives "
           "behind simd::KernelTable so every kernel has a bit-exact scalar "
           "twin and one dispatch point"});
    }
    const std::string code = StripCommentsAndStrings(file.content);
    for (auto it = std::sregex_iterator(code.begin(), code.end(), kToken);
         it != std::sregex_iterator(); ++it) {
      findings.push_back(
          {"intrinsics-outside-simd", file.path,
           LineOfOffset(code, static_cast<std::size_t>(it->position())),
           "x86 intrinsic used outside src/simd/; call through "
           "simd::Kernels() (add a kernel entry if none fits) so the scalar "
           "tier and parity tests stay complete"});
    }
  }
  return findings;
}

std::vector<Finding> CheckTestRegistration(
    const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  const SourceFile* cmake = nullptr;
  for (const SourceFile& file : files) {
    if (file.path == "tests/CMakeLists.txt") cmake = &file;
  }
  for (const SourceFile& file : files) {
    if (!StartsWith(file.path, "tests/") || !EndsWith(file.path, "_test.cc")) {
      continue;
    }
    if (file.path.find('/', 6) != std::string::npos) continue;  // subdirs
    const std::string name = file.path.substr(6);
    if (cmake == nullptr) {
      findings.push_back({"unregistered-test", file.path, 1,
                          "tests/CMakeLists.txt is missing, so " + name +
                              " cannot be registered anywhere"});
      continue;
    }
    if (cmake->content.find(name) != std::string::npos) continue;
    findings.push_back(
        {"unregistered-test", file.path, 1,
         name + " is not listed in tests/CMakeLists.txt "
                "(ROTIND_TEST_SOURCES); an unregistered test never runs"});
  }
  return findings;
}

std::vector<Finding> CheckNolintReasons(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  // A valid suppression (plain, NEXTLINE, or BEGIN form) names its check
  // in parentheses and follows with ": reason"; the END form needs only
  // the matching check name.
  static const std::regex kAny(R"(NOLINT(NEXTLINE|BEGIN|END)?)");
  static const std::regex kValid(
      R"(NOLINT(NEXTLINE|BEGIN)?\([^)]+\)\s*:\s*\S|NOLINTEND\([^)]+\))");
  for (const SourceFile& file : files) {
    const std::string comments = FilterSource(
        file.content, /*keep_comments=*/true, /*keep_strings=*/false);
    for (auto it =
             std::sregex_iterator(comments.begin(), comments.end(), kAny);
         it != std::sregex_iterator(); ++it) {
      const std::size_t pos = static_cast<std::size_t>(it->position());
      // Re-anchor the validity pattern at this exact occurrence.
      std::smatch m;
      const std::string tail = comments.substr(pos);
      if (std::regex_search(tail, m, kValid) && m.position() == 0) continue;
      findings.push_back(
          {"nolint-reason", file.path, LineOfOffset(comments, pos),
           "suppression must name its check and give a written reason: "
           "`NOLINTNEXTLINE(<check>): <why this is safe here>`"});
    }
  }
  return findings;
}

std::vector<Finding> CheckSyncPrimitives(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  // The std vocabulary that bypasses the annotated layer. CondVar wraps
  // condition_variable_any; the generic lock adapters are covered so a
  // rotind::Mutex cannot be driven through an unannotated std guard.
  static const std::regex kToken(
      R"(\bstd\s*::\s*(condition_variable_any|condition_variable|mutex|)"
      R"(recursive_mutex|timed_mutex|recursive_timed_mutex|shared_mutex|)"
      R"(shared_timed_mutex|lock_guard|unique_lock|scoped_lock|shared_lock)\b)");
  static const std::regex kInclude(
      R"(^\s*#\s*include\s*<(mutex|condition_variable|shared_mutex)>)");
  for (const SourceFile& file : files) {
    if (!StartsWith(file.path, "src/")) continue;
    if (file.path == "src/core/sync.h") continue;  // the one wrapping TU
    const std::string code = StripCommentsAndStrings(file.content);
    const std::vector<std::string> lines = SplitLines(code);
    for (std::size_t i = 0; i < lines.size(); ++i) {
      std::smatch m;
      std::string what;
      if (std::regex_search(lines[i], m, kToken)) {
        what = "std::" + m[1].str();
      } else if (std::regex_search(lines[i], m, kInclude)) {
        what = "#include <" + m[1].str() + ">";
      } else {
        continue;
      }
      findings.push_back(
          {"raw-sync-primitive", file.path, static_cast<int>(i + 1),
           what +
               " in src/ outside core/sync.h; use rotind::Mutex / "
               "MutexLock / CondVar so Clang -Wthread-safety can prove the "
               "lock discipline (tests/, bench/, tools/ are exempt)"});
    }
  }
  return findings;
}

std::vector<Finding> CheckGuardedMembers(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  // A rotind::Mutex member declaration marks its enclosing brace block as
  // a synchronized class. Member names end in '_' by convention, which is
  // what separates them from locals in function bodies.
  static const std::regex kMutexMember(
      R"(\b(?:rotind\s*::\s*)?Mutex\s+[A-Za-z_]\w*_\s*[;{])");
  static const std::regex kMemberDecl(R"(([A-Za-z_]\w*_)\s*(?:;|=[^=]|\{))");
  // Lines that are not mutable instance state (or not state at all).
  static const std::regex kSkipLead(
      R"(^\s*(?:const\b|static\b|constexpr\b|using\b|typedef\b|friend\b|)"
      R"(enum\b|struct\b|class\b|public\s*:|private\s*:|protected\s*:))");
  for (const SourceFile& file : files) {
    if (!StartsWith(file.path, "src/")) continue;
    if (file.path == "src/core/sync.h") continue;
    const std::vector<std::string> code =
        SplitLines(StripCommentsAndStrings(file.content));
    const std::vector<std::string> comments = SplitLines(FilterSource(
        file.content, /*keep_comments=*/true, /*keep_strings=*/false));
    // Brace-block id at the start of each line: two lines share an id iff
    // the same unclosed '{' encloses both. Nested structs are therefore
    // different blocks and never inherit the outer class's mutex.
    std::vector<int> block_of_line(code.size(), 0);
    {
      std::vector<int> stack{0};
      int next_id = 1;
      for (std::size_t i = 0; i < code.size(); ++i) {
        block_of_line[i] = stack.back();
        for (const char c : code[i]) {
          if (c == '{') {
            stack.push_back(next_id++);
          } else if (c == '}' && stack.size() > 1) {
            stack.pop_back();
          }
        }
      }
    }
    std::set<int> synchronized;
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (std::regex_search(code[i], kMutexMember)) {
        synchronized.insert(block_of_line[i]);
      }
    }
    if (synchronized.empty()) continue;
    const auto is_blank = [](const std::string& s) {
      for (const char c : s) {
        if (std::isspace(static_cast<unsigned char>(c)) == 0) return false;
      }
      return true;
    };
    // SYNC-EXEMPT on the declaration line itself, or anywhere in the
    // contiguous comment block directly above it.
    const auto exempt = [&](std::size_t i) {
      if (i < comments.size() &&
          comments[i].find("SYNC-EXEMPT:") != std::string::npos) {
        return true;
      }
      for (std::size_t j = i; j > 0;) {
        --j;
        if (!is_blank(code[j])) return false;  // real code ends the block
        if (j >= comments.size() || is_blank(comments[j])) return false;
        if (comments[j].find("SYNC-EXEMPT:") != std::string::npos) {
          return true;
        }
      }
      return false;
    };
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (synchronized.count(block_of_line[i]) == 0) continue;
      const std::string& line = code[i];
      if (line.find("ROTIND_GUARDED_BY(") != std::string::npos ||
          line.find("ROTIND_PT_GUARDED_BY(") != std::string::npos) {
        continue;
      }
      if (std::regex_search(line, kMutexMember)) continue;  // the guard
      if (line.find("CondVar") != std::string::npos) continue;
      if (std::regex_search(line, kSkipLead)) continue;
      // A '(' means a function declaration or a paren initializer — out of
      // this heuristic's scope (the Clang analysis still covers the field).
      if (line.find('(') != std::string::npos) continue;
      std::smatch m;
      if (!std::regex_search(line, m, kMemberDecl)) continue;
      if (exempt(i)) continue;
      findings.push_back(
          {"guarded-by", file.path, static_cast<int>(i + 1),
           "member '" + m[1].str() +
               "' shares a class with a rotind::Mutex but is neither "
               "ROTIND_GUARDED_BY / ROTIND_PT_GUARDED_BY, const, nor "
               "'// SYNC-EXEMPT: <reason>'; every field of a synchronized "
               "class must name its guard or justify not having one"});
    }
  }
  return findings;
}

std::vector<Finding> CheckAtomicAllowlist(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  // std::atomic is invisible to the thread-safety analysis, so each file
  // using one carries a standing justification here:
  //   core/cancel.h        lock-free cancel flag + shared kill-switch
  //   core/sync.h          the sync layer itself
  //   search/engine.h      SharedBound: the cross-shard best-so-far CAS-min
  //                        (a mutex would serialize the parallel scans it
  //                        exists to speed up)
  //   search/engine.cc     ParallelFor work counter / failure latch
  //   serve/server.h       the server kill-switch (SYNC-EXEMPT'd member)
  //   storage/simulated_disk.h  concurrent fetch tallies
  static const std::set<std::string> kAllowed = {
      "src/core/cancel.h", "src/core/sync.h", "src/search/engine.h",
      "src/search/engine.cc", "src/serve/server.h",
      "src/storage/simulated_disk.h"};
  static const std::regex kToken(R"(\bstd\s*::\s*atomic\b)");
  for (const SourceFile& file : files) {
    if (!StartsWith(file.path, "src/")) continue;
    if (kAllowed.count(file.path) != 0) continue;
    const std::string code = StripCommentsAndStrings(file.content);
    for (auto it = std::sregex_iterator(code.begin(), code.end(), kToken);
         it != std::sregex_iterator(); ++it) {
      findings.push_back(
          {"atomic-allowlist", file.path,
           LineOfOffset(code, static_cast<std::size_t>(it->position())),
           "std::atomic outside the allowlist: atomics bypass the "
           "thread-safety analysis, so prefer a rotind::Mutex-guarded "
           "field, or add this file to CheckAtomicAllowlist's list with a "
           "written justification"});
    }
  }
  return findings;
}

std::vector<Finding> CheckRawFileMutation(
    const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  // Direct libc file mutation outside the storage/io layers defeats the
  // crash-safety story: a stray fopen can tear a file no checksum guards,
  // and a stray rename can publish state the manifest never blessed. The
  // sanctioned primitives are io::WriteStringToFile (temp-free whole-file
  // write) and storage::WriteManifest (temp write + atomic rename).
  static const std::regex kToken(R"(\b(?:std\s*::\s*)?(fopen|rename)\s*\()");
  for (const SourceFile& file : files) {
    if (!StartsWith(file.path, "src/")) continue;
    if (StartsWith(file.path, "src/io/") ||
        StartsWith(file.path, "src/storage/")) {
      continue;
    }
    const std::string code = StripCommentsAndStrings(file.content);
    for (auto it = std::sregex_iterator(code.begin(), code.end(), kToken);
         it != std::sregex_iterator(); ++it) {
      const std::size_t pos = static_cast<std::size_t>(it->position());
      // Member calls (x.rename(...), p->rename(...)) and non-std qualified
      // names (fs::rename matches with its qualifier OUTSIDE the token)
      // are someone else's API, not the libc call.
      std::size_t before = pos;
      while (before > 0 && std::isspace(static_cast<unsigned char>(
                               code[before - 1]))) {
        --before;
      }
      if (before > 0 && (code[before - 1] == '.' || code[before - 1] == '>' ||
                         code[before - 1] == ':')) {
        continue;
      }
      findings.push_back(
          {"raw-file-mutation", file.path, LineOfOffset(code, pos),
           (*it)[1].str() +
               "() in src/ outside src/io/ + src/storage/; write files "
               "through io::WriteStringToFile and publish multi-file state "
               "through storage::WriteManifest (temp write + atomic rename) "
               "so crash safety stays provable in one place"});
    }
  }
  return findings;
}

std::vector<Finding> RunAllChecks(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  for (auto* check :
       {CheckLayering, CheckNodiscard, CheckUncheckedValue,
        CheckKernelHygiene, CheckIntrinsicsOutsideSimd, CheckTestRegistration,
        CheckNolintReasons, CheckSyncPrimitives, CheckGuardedMembers,
        CheckAtomicAllowlist, CheckRawFileMutation}) {
    std::vector<Finding> f = check(files);
    findings.insert(findings.end(), std::make_move_iterator(f.begin()),
                    std::make_move_iterator(f.end()));
  }
  SortFindings(&findings);
  return findings;
}

StatusOr<std::vector<SourceFile>> LoadSourceTree(
    const std::string& repo_root) {
  const fs::path root(repo_root);
  std::error_code ec;
  if (!fs::is_directory(root / "src", ec)) {
    return Status::NotFound("not a rotind repository (no src/ directory): " +
                            repo_root);
  }
  std::vector<SourceFile> files;
  for (const char* top : {"src", "tools", "bench", "tests", "examples"}) {
    const fs::path dir = root / top;
    if (!fs::is_directory(dir, ec)) continue;
    for (fs::recursive_directory_iterator it(dir, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (!it->is_regular_file(ec)) continue;
      const std::string ext = it->path().extension().string();
      const bool is_source = ext == ".h" || ext == ".cc" || ext == ".cpp";
      const bool is_test_cmake =
          std::string(top) == "tests" &&
          it->path().filename() == "CMakeLists.txt";
      if (!is_source && !is_test_cmake) continue;
      std::ifstream in(it->path(), std::ios::binary);
      if (!in) {
        return Status::IoError("cannot read " + it->path().string());
      }
      std::string content((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
      std::string rel =
          fs::relative(it->path(), root, ec).generic_string();
      if (ec) rel = it->path().generic_string();
      files.push_back({std::move(rel), std::move(content)});
    }
    if (ec) {
      return Status::IoError("error walking " + dir.string() + ": " +
                             ec.message());
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return files;
}

StatusOr<std::vector<Finding>> LintRepository(const std::string& repo_root) {
  StatusOr<std::vector<SourceFile>> files = LoadSourceTree(repo_root);
  if (!files.ok()) return files.status();
  return RunAllChecks(*files);
}

}  // namespace lint
}  // namespace rotind
