/// CLI wrapper for rotind_lint: lints a repository checkout and prints one
/// line per finding in the conventional `file:line: rule: message` shape
/// that editors and CI annotate. Exit 0 = clean, 1 = findings, 2 = could
/// not read the tree.
///
///   rotind_lint [repo_root]      (default: current directory)

#include <cstdio>
#include <string>

#include "tools/lint/rotind_lint.h"

int main(int argc, char** argv) {
  const std::string root = argc > 1 ? argv[1] : ".";
  const rotind::StatusOr<std::vector<rotind::lint::Finding>> findings =
      rotind::lint::LintRepository(root);
  if (!findings.ok()) {
    std::fprintf(stderr, "rotind_lint: %s\n",
                 findings.status().message().c_str());
    return 2;
  }
  for (const rotind::lint::Finding& f : *findings) {
    std::fprintf(stderr, "%s:%d: %s: %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
  if (!findings->empty()) {
    std::fprintf(stderr, "rotind_lint: %zu finding(s) in %s\n",
                 findings->size(), root.c_str());
    return 1;
  }
  std::printf("rotind_lint: clean\n");
  return 0;
}
