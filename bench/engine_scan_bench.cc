/// End-to-end scan benchmark with machine-readable output.
///
/// Runs every cascade composition (the legacy algorithm set plus the
/// FFT-filter + wedge pipeline) over a synthetic projectile-points
/// workload under Euclidean and DTW, then times the batch driver at 1 and
/// N threads. Results — implementation-free step counts, stage-attributed
/// observability metrics, AND wall-clock — are written as JSON so CI can
/// archive and diff them across commits.
///
///   engine_scan_bench [output.json] [--check baseline.json]
///                     [--tolerance FRAC]
///
/// --check compares the run's deterministic counters (step counts and
/// candidate-flow fields; never wall-clock or latency) against a committed
/// baseline and exits nonzero on drift beyond --tolerance (a fraction,
/// default 0 = exact; CI passes a small tolerance to absorb libm
/// differences across platforms that can shift prune counts near ties).
///
/// Scale: ROTIND_BENCH_SCALE=full for paper-sized inputs.

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/datasets/synthetic.h"
#include "src/obs/metrics.h"
#include "src/search/engine.h"
#include "src/simd/simd.h"

namespace rotind::bench {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct Row {
  std::string name;
  std::string kind;
  std::uint64_t total_steps = 0;
  double wall_seconds = 0.0;
  std::size_t queries = 0;
  obs::QueryMetrics metrics;
};

/// Runs `queries` leave-one-out 1-NN searches through one engine
/// configuration and records total steps, per-stage metrics, and wall time.
Row RunConfig(const std::string& name, const FlatDataset& db,
              const std::vector<std::size_t>& queries,
              const EngineOptions& options) {
  Row row;
  row.name = name;
  row.kind = DistanceKindName(options.kind);
  row.queries = queries.size();
  const QueryEngine engine(db, options);
  const auto t0 = Clock::now();
  for (std::size_t qi : queries) {
    const ScanResult r =
        engine.SearchLeaveOneOut(db.Materialize(qi), qi, &row.metrics);
    row.total_steps += r.counter.total_steps();
  }
  row.wall_seconds = Seconds(t0, Clock::now());
  return row;
}

/// The deterministic counter keys a --check run compares. Everything that
/// measures real time (wall_seconds, *_nanos, speedup) is deliberately
/// absent: only step counts and candidate/wedge/index flow are stable
/// across runs.
bool IsCounterKey(const std::string& key) {
  static const char* const kKeys[] = {
      "total_steps",     "attributed_total_steps",
      "queries",         "candidates_entered",
      "candidates_pruned", "candidates_survived",
      "steps",           "setup_steps",
      "early_abandons",  "wedges_tested",
      "wedges_pruned",   "wedges_descended",
      "leaves_evaluated", "leaves_abandoned",
      "adapt_probes",    "signature_evals",
      "object_fetches",  "page_reads",
      "refinements",
  };
  for (const char* k : kKeys) {
    if (key == k) return true;
  }
  return false;
}

struct CounterSample {
  std::string key;
  double value = 0.0;
};

/// Extracts every `"key": <number>` pair whose key is a deterministic
/// counter, in document order. A full JSON parser is overkill: both sides
/// of the diff are produced by this binary, so positional comparison of
/// the counter stream is exact.
std::vector<CounterSample> ExtractCounters(const std::string& text) {
  std::vector<CounterSample> out;
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '"') {
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    while (j < text.size() && text[j] != '"') ++j;
    if (j >= text.size()) break;
    const std::string key = text.substr(i + 1, j - i - 1);
    std::size_t k = j + 1;
    while (k < text.size() && std::isspace(static_cast<unsigned char>(text[k])))
      ++k;
    if (k < text.size() && text[k] == ':') {
      ++k;
      while (k < text.size() &&
             std::isspace(static_cast<unsigned char>(text[k])))
        ++k;
      if (k < text.size() &&
          (std::isdigit(static_cast<unsigned char>(text[k])) ||
           text[k] == '-')) {
        char* end = nullptr;
        const double v = std::strtod(text.c_str() + k, &end);
        if (end != text.c_str() + k) {
          if (IsCounterKey(key)) out.push_back({key, v});
          i = static_cast<std::size_t>(end - text.c_str());
          continue;
        }
      }
    }
    i = j + 1;
  }
  return out;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, got);
  std::fclose(f);
  return true;
}

/// Diffs the deterministic counters of `current_path` against
/// `baseline_path`. Returns 0 when every counter is within `tolerance`
/// (relative), 1 otherwise.
int CheckAgainstBaseline(const std::string& current_path,
                         const std::string& baseline_path, double tolerance) {
  std::string current_text;
  std::string baseline_text;
  if (!ReadFile(current_path, &current_text)) {
    std::fprintf(stderr, "check: cannot read %s\n", current_path.c_str());
    return 1;
  }
  if (!ReadFile(baseline_path, &baseline_text)) {
    std::fprintf(stderr, "check: cannot read baseline %s\n",
                 baseline_path.c_str());
    return 1;
  }
  const std::vector<CounterSample> current = ExtractCounters(current_text);
  const std::vector<CounterSample> baseline = ExtractCounters(baseline_text);
  if (current.size() != baseline.size()) {
    std::fprintf(stderr,
                 "check FAILED: counter stream length differs (current %zu "
                 "vs baseline %zu) — schema or configuration drift\n",
                 current.size(), baseline.size());
    return 1;
  }
  int failures = 0;
  for (std::size_t i = 0; i < current.size(); ++i) {
    if (current[i].key != baseline[i].key) {
      std::fprintf(stderr,
                   "check FAILED at counter %zu: key '%s' vs baseline '%s'\n",
                   i, current[i].key.c_str(), baseline[i].key.c_str());
      return 1;
    }
    const double base = baseline[i].value;
    const double diff = std::fabs(current[i].value - base);
    const double allowed = tolerance * std::fabs(base);
    if (diff > allowed) {
      std::fprintf(stderr,
                   "check FAILED: counter %zu '%s' = %.0f, baseline %.0f "
                   "(|diff| %.0f > allowed %.0f)\n",
                   i, current[i].key.c_str(), current[i].value, base, diff,
                   allowed);
      ++failures;
    }
  }
  if (failures > 0) return 1;
  std::printf("baseline check passed: %zu counters within %.2f%% of %s\n",
              current.size(), 100.0 * tolerance, baseline_path.c_str());
  return 0;
}

int Run(int argc, char** argv) {
  std::string out_path = "BENCH_scan.json";
  std::string baseline_path;
  double tolerance = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else {
      out_path = argv[i];
    }
  }
  const bool full = FullScale();
  const std::size_t n = 251;
  const std::size_t m = full ? 4000 : 400;
  const std::size_t num_queries = full ? 20 : 8;

  const FlatDataset db =
      FlatDataset::FromItems(MakeProjectilePointsDatabase(m, n, 2006));
  const QuerySet qs = PickQueries(m, num_queries, 42);

  // Every composition the engine can express for each measure. The names
  // spell out the cascade so the JSON is self-describing.
  struct Config {
    const char* name;
    DistanceKind kind;
    CascadeSpec cascade;
    /// Pooled-embedding width for kVecSignature (0 = engine default). On
    /// this dataset band-pooling collapses the bound fast (reverse
    /// triangle inequality per band: similar band energies => tiny lower
    /// bound), so the bench runs the filter at full spectral resolution
    /// n/2, where it actually prunes; coarse dims pay off only on the
    /// stored-row (RIDX v2) path, where each comparison is O(dims).
    std::size_t vec_sig_dims = 0;
  };
  const std::vector<Config> configs = {
      {"ed/full-scan", DistanceKind::kEuclidean, {{StageKind::kFullScan}}},
      {"ed/early-abandon", DistanceKind::kEuclidean,
       {{StageKind::kExactScan}}},
      {"ed/fft+early-abandon", DistanceKind::kEuclidean,
       {{StageKind::kFftMagnitude, StageKind::kExactScan}}},
      {"ed/wedge", DistanceKind::kEuclidean, {{StageKind::kWedge}}},
      {"ed/fft+wedge", DistanceKind::kEuclidean,
       {{StageKind::kFftMagnitude, StageKind::kWedge}}},
      {"ed/vecsig+early-abandon", DistanceKind::kEuclidean,
       {{StageKind::kVecSignature, StageKind::kExactScan}},
       /*vec_sig_dims=*/125},
      {"ed/lbimproved+early-abandon", DistanceKind::kEuclidean,
       {{StageKind::kLbImproved, StageKind::kExactScan}}},
      {"ed/vecsig+fft+lbimproved+early-abandon", DistanceKind::kEuclidean,
       {{StageKind::kVecSignature, StageKind::kFftMagnitude,
         StageKind::kLbImproved, StageKind::kExactScan}},
       /*vec_sig_dims=*/125},
      {"dtw/full-scan-banded", DistanceKind::kDtw,
       {{StageKind::kFullScanBanded}}},
      {"dtw/early-abandon", DistanceKind::kDtw, {{StageKind::kExactScan}}},
      {"dtw/lbimproved+early-abandon", DistanceKind::kDtw,
       {{StageKind::kLbImproved, StageKind::kExactScan}}},
      {"dtw/wedge", DistanceKind::kDtw, {{StageKind::kWedge}}},
  };

  bool attribution_exact = true;
  std::vector<Row> rows;
  for (const Config& c : configs) {
    EngineOptions options;
    options.kind = c.kind;
    options.band = 5;
    options.cascade = c.cascade;
    if (c.vec_sig_dims != 0) options.vec_sig_dims = c.vec_sig_dims;
    rows.push_back(RunConfig(c.name, db, qs.query_indices, options));
    const Row& row = rows.back();
    if (row.metrics.attributed_total_steps() != row.total_steps) {
      std::fprintf(stderr,
                   "  %s: stage attribution leak — %llu attributed vs %llu "
                   "counted\n",
                   row.name.c_str(),
                   static_cast<unsigned long long>(
                       row.metrics.attributed_total_steps()),
                   static_cast<unsigned long long>(row.total_steps));
      attribution_exact = false;
    }
    // Per-stage pruning power: what fraction of the candidates entering
    // each stage it removed — the paper's Figure 19-23 metric, per stage
    // instead of per cascade. Terminals never prune (they decide), so
    // only stages that pruned at least once are shown.
    std::string pruning;
    for (std::size_t s = 0; s < obs::kNumStages; ++s) {
      const obs::StageStats& st = row.metrics.stages[s];
      if (!st.used || st.candidates_entered == 0 ||
          st.candidates_pruned == 0) {
        continue;
      }
      char cell[64];
      std::snprintf(cell, sizeof cell, "  %s=%.1f%%",
                    obs::StageName(static_cast<obs::StageId>(s)),
                    100.0 * static_cast<double>(st.candidates_pruned) /
                        static_cast<double>(st.candidates_entered));
      pruning += cell;
    }
    std::printf("  %-40s %14llu steps  %8.3f s%s\n", row.name.c_str(),
                static_cast<unsigned long long>(row.total_steps),
                row.wall_seconds, pruning.c_str());
  }

  // Batch driver scaling: the same wedge workload at 1 thread vs the
  // machine's parallelism, with bit-identical results by construction.
  std::vector<Series> batch_queries;
  for (std::size_t qi : qs.query_indices) {
    batch_queries.push_back(db.Materialize(qi));
  }
  const QueryEngine engine(db);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int threads = hw > 1 ? hw : 2;
  obs::QueryMetrics serial_metrics;
  obs::QueryMetrics parallel_metrics;
  const auto t1 = Clock::now();
  const auto serial = engine.SearchBatch(batch_queries, 1, nullptr,
                                         &serial_metrics);
  const auto t2 = Clock::now();
  const auto parallel = engine.SearchBatch(batch_queries, threads, nullptr,
                                           &parallel_metrics);
  const auto t3 = Clock::now();
  const double serial_s = Seconds(t1, t2);
  const double parallel_s = Seconds(t2, t3);
  bool identical = serial.size() == parallel.size() &&
                   serial_metrics.attributed_total_steps() ==
                       parallel_metrics.attributed_total_steps();
  for (std::size_t i = 0; identical && i < serial.size(); ++i) {
    identical = serial[i].best_index == parallel[i].best_index &&
                serial[i].best_distance == parallel[i].best_distance &&
                serial[i].counter.total_steps() ==
                    parallel[i].counter.total_steps();
  }
  std::printf("  batch: %zu queries  1 thread %.3f s, %d threads %.3f s "
              "(%.2fx, identical=%s)\n",
              batch_queries.size(), serial_s, threads, parallel_s,
              parallel_s > 0.0 ? serial_s / parallel_s : 0.0,
              identical ? "yes" : "NO");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out,
               "  \"dataset\": {\"generator\": \"projectile-points\", "
               "\"m\": %zu, \"n\": %zu, \"queries\": %zu, "
               "\"simd\": \"%s\"},\n",
               m, n, num_queries, simd::ActiveTierName());
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"kind\": \"%s\", "
                 "\"total_steps\": %llu, \"wall_seconds\": %.6f, "
                 "\"queries\": %zu,\n"
                 "     \"metrics\":\n%s}%s\n",
                 rows[i].name.c_str(), rows[i].kind.c_str(),
                 static_cast<unsigned long long>(rows[i].total_steps),
                 rows[i].wall_seconds, rows[i].queries,
                 rows[i].metrics.ToJson(5).c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"batch\": {\"queries\": %zu, \"threads\": %d, "
               "\"serial_seconds\": %.6f, \"parallel_seconds\": %.6f, "
               "\"speedup\": %.3f, \"bit_identical\": %s,\n"
               "   \"metrics\":\n%s}\n",
               batch_queries.size(), threads, serial_s, parallel_s,
               parallel_s > 0.0 ? serial_s / parallel_s : 0.0,
               identical ? "true" : "false",
               serial_metrics.ToJson(3).c_str());
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  if (!identical || !attribution_exact) return 1;
  if (!baseline_path.empty()) {
    return CheckAgainstBaseline(out_path, baseline_path, tolerance);
  }
  return 0;
}

}  // namespace
}  // namespace rotind::bench

int main(int argc, char** argv) { return rotind::bench::Run(argc, argv); }
