/// End-to-end scan benchmark with machine-readable output.
///
/// Runs every cascade composition (the legacy algorithm set plus the
/// FFT-filter + wedge pipeline) over a synthetic projectile-points
/// workload under Euclidean and DTW, then times the batch driver at 1 and
/// N threads. Results — implementation-free step counts AND wall-clock —
/// are written as JSON so CI can archive and diff them across commits.
///
///   engine_scan_bench [output.json]      (default: BENCH_scan.json)
///
/// Scale: ROTIND_BENCH_SCALE=full for paper-sized inputs.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/datasets/synthetic.h"
#include "src/search/engine.h"

namespace rotind::bench {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct Row {
  std::string name;
  std::string kind;
  std::uint64_t total_steps = 0;
  double wall_seconds = 0.0;
  std::size_t queries = 0;
};

/// Runs `queries` leave-one-out 1-NN searches through one engine
/// configuration and records total steps + wall time.
Row RunConfig(const std::string& name, const FlatDataset& db,
              const std::vector<std::size_t>& queries,
              const EngineOptions& options) {
  Row row;
  row.name = name;
  row.kind = DistanceKindName(options.kind);
  row.queries = queries.size();
  const QueryEngine engine(db, options);
  const auto t0 = Clock::now();
  for (std::size_t qi : queries) {
    const ScanResult r = engine.SearchLeaveOneOut(db.Materialize(qi), qi);
    row.total_steps += r.counter.total_steps();
  }
  row.wall_seconds = Seconds(t0, Clock::now());
  return row;
}

int Run(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_scan.json";
  const bool full = FullScale();
  const std::size_t n = 251;
  const std::size_t m = full ? 4000 : 400;
  const std::size_t num_queries = full ? 20 : 8;

  const FlatDataset db =
      FlatDataset::FromItems(MakeProjectilePointsDatabase(m, n, 2006));
  const QuerySet qs = PickQueries(m, num_queries, 42);

  // Every composition the engine can express for each measure. The names
  // spell out the cascade so the JSON is self-describing.
  struct Config {
    const char* name;
    DistanceKind kind;
    CascadeSpec cascade;
  };
  const std::vector<Config> configs = {
      {"ed/full-scan", DistanceKind::kEuclidean, {{StageKind::kFullScan}}},
      {"ed/early-abandon", DistanceKind::kEuclidean,
       {{StageKind::kExactScan}}},
      {"ed/fft+early-abandon", DistanceKind::kEuclidean,
       {{StageKind::kFftMagnitude, StageKind::kExactScan}}},
      {"ed/wedge", DistanceKind::kEuclidean, {{StageKind::kWedge}}},
      {"ed/fft+wedge", DistanceKind::kEuclidean,
       {{StageKind::kFftMagnitude, StageKind::kWedge}}},
      {"dtw/full-scan-banded", DistanceKind::kDtw,
       {{StageKind::kFullScanBanded}}},
      {"dtw/early-abandon", DistanceKind::kDtw, {{StageKind::kExactScan}}},
      {"dtw/wedge", DistanceKind::kDtw, {{StageKind::kWedge}}},
  };

  std::vector<Row> rows;
  for (const Config& c : configs) {
    EngineOptions options;
    options.kind = c.kind;
    options.band = 5;
    options.cascade = c.cascade;
    rows.push_back(RunConfig(c.name, db, qs.query_indices, options));
    std::printf("  %-24s %14llu steps  %8.3f s\n", rows.back().name.c_str(),
                static_cast<unsigned long long>(rows.back().total_steps),
                rows.back().wall_seconds);
  }

  // Batch driver scaling: the same wedge workload at 1 thread vs the
  // machine's parallelism, with bit-identical results by construction.
  std::vector<Series> batch_queries;
  for (std::size_t qi : qs.query_indices) {
    batch_queries.push_back(db.Materialize(qi));
  }
  const QueryEngine engine(db);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int threads = hw > 1 ? hw : 2;
  const auto t1 = Clock::now();
  const auto serial = engine.SearchBatch(batch_queries, 1);
  const auto t2 = Clock::now();
  const auto parallel = engine.SearchBatch(batch_queries, threads);
  const auto t3 = Clock::now();
  const double serial_s = Seconds(t1, t2);
  const double parallel_s = Seconds(t2, t3);
  bool identical = serial.size() == parallel.size();
  for (std::size_t i = 0; identical && i < serial.size(); ++i) {
    identical = serial[i].best_index == parallel[i].best_index &&
                serial[i].best_distance == parallel[i].best_distance &&
                serial[i].counter.total_steps() ==
                    parallel[i].counter.total_steps();
  }
  std::printf("  batch: %zu queries  1 thread %.3f s, %d threads %.3f s "
              "(%.2fx, identical=%s)\n",
              batch_queries.size(), serial_s, threads, parallel_s,
              parallel_s > 0.0 ? serial_s / parallel_s : 0.0,
              identical ? "yes" : "NO");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out,
               "  \"dataset\": {\"generator\": \"projectile-points\", "
               "\"m\": %zu, \"n\": %zu, \"queries\": %zu},\n",
               m, n, num_queries);
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"kind\": \"%s\", "
                 "\"total_steps\": %llu, \"wall_seconds\": %.6f, "
                 "\"queries\": %zu}%s\n",
                 rows[i].name.c_str(), rows[i].kind.c_str(),
                 static_cast<unsigned long long>(rows[i].total_steps),
                 rows[i].wall_seconds, rows[i].queries,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"batch\": {\"queries\": %zu, \"threads\": %d, "
               "\"serial_seconds\": %.6f, \"parallel_seconds\": %.6f, "
               "\"speedup\": %.3f, \"bit_identical\": %s}\n",
               batch_queries.size(), threads, serial_s, parallel_s,
               parallel_s > 0.0 ? serial_s / parallel_s : 0.0,
               identical ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace rotind::bench

int main(int argc, char** argv) { return rotind::bench::Run(argc, argv); }
