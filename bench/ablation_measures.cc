/// "Arbitrary distance measures" (the paper's title claim): the same wedge
/// machinery accelerates Euclidean distance, DTW, and LCSS. This bench
/// puts the three side by side on the projectile-points workload — for
/// LCSS, on a variant with occlusions (broken tips/tangs, paper Figure
/// 15), which is the measure's reason to exist.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/datasets/synthetic.h"
#include "src/search/lcss_search.h"

namespace rotind::bench {
namespace {

int Run() {
  const bool full = FullScale();
  const std::size_t n = 251;
  const std::size_t m = full ? 4000 : 600;
  const std::size_t num_queries = full ? 20 : 6;

  std::printf("One wedge machinery, three measures (projectile points, "
              "n=%zu, m=%zu, %zu queries)\n\n",
              n, m, num_queries);

  std::vector<Series> db = MakeProjectilePointsDatabase(m, n, 26);
  // Occlude a third of the specimens: a contiguous chunk is replaced by a
  // far-away constant (a broken tang reads as a profile outlier).
  Rng rng(126);
  for (std::size_t i = 0; i < m; i += 3) {
    const std::size_t start = rng.NextBounded(n - n / 8);
    for (std::size_t j = start; j < start + n / 10; ++j) db[i][j] = 6.0;
  }
  const QuerySet queries = PickQueries(m, num_queries, 226);

  // Euclidean and DTW via the standard scans.
  {
    const double brute =
        BruteStepsPerComparison(n, n, DistanceKind::kEuclidean, 0);
    ScanOptions ed;
    const double wedge = AverageStepsPerComparison(
        db, m, queries, ScanAlgorithm::kWedge, ed);
    std::printf("  %-22s %12.1f steps/cmp   %.6f of its brute force\n",
                "Euclidean wedge", wedge, wedge / brute);
  }
  {
    const double brute = BruteStepsPerComparison(n, n, DistanceKind::kDtw, 5);
    ScanOptions dtw;
    dtw.kind = DistanceKind::kDtw;
    dtw.band = 5;
    const double wedge = AverageStepsPerComparison(
        db, m, queries, ScanAlgorithm::kWedge, dtw);
    std::printf("  %-22s %12.1f steps/cmp   %.6f of its brute force\n",
                "DTW (R=5) wedge", wedge, wedge / brute);
  }
  // LCSS: wedge filter vs brute force, measured directly.
  {
    LcssOptions lcss;
    lcss.epsilon = 0.25;
    lcss.delta = 5;
    double wedge_steps = 0.0;
    double brute_steps = 0.0;
    std::uint64_t comparisons = 0;
    for (std::size_t qi : queries.query_indices) {
      const std::vector<Series> subset = Restrict(db, m, qi);
      const LcssScanResult w =
          LcssSearchDatabase(subset, db[qi], lcss, {}, /*use_wedges=*/true);
      const LcssScanResult b =
          LcssSearchDatabase(subset, db[qi], lcss, {}, /*use_wedges=*/false);
      wedge_steps += static_cast<double>(w.counter.total_steps());
      brute_steps += static_cast<double>(b.counter.total_steps());
      comparisons += subset.size();
    }
    wedge_steps /= static_cast<double>(comparisons);
    brute_steps /= static_cast<double>(comparisons);
    std::printf("  %-22s %12.1f steps/cmp   %.6f of its brute force\n",
                "LCSS wedge", wedge_steps, wedge_steps / brute_steps);
  }
  std::printf("\n(each line normalises against the brute-force rotation "
              "scan of ITS OWN measure)\n\n");
  return 0;
}

}  // namespace
}  // namespace rotind::bench

int main() { return rotind::bench::Run(); }
