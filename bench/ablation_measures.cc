/// "Arbitrary distance measures" (the paper's title claim): the same wedge
/// machinery accelerates Euclidean distance, DTW, and LCSS. This bench
/// puts the three side by side on the projectile-points workload — for
/// LCSS, on a variant with occlusions (broken tips/tangs, paper Figure
/// 15), which is the measure's reason to exist.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/datasets/synthetic.h"

namespace rotind::bench {
namespace {

int Run() {
  const bool full = FullScale();
  const std::size_t n = 251;
  const std::size_t m = full ? 4000 : 600;
  const std::size_t num_queries = full ? 20 : 6;

  std::printf("One wedge machinery, three measures (projectile points, "
              "n=%zu, m=%zu, %zu queries)\n\n",
              n, m, num_queries);

  std::vector<Series> db = MakeProjectilePointsDatabase(m, n, 26);
  // Occlude a third of the specimens: a contiguous chunk is replaced by a
  // far-away constant (a broken tang reads as a profile outlier).
  Rng rng(126);
  for (std::size_t i = 0; i < m; i += 3) {
    const std::size_t start = rng.NextBounded(n - n / 8);
    for (std::size_t j = start; j < start + n / 10; ++j) db[i][j] = 6.0;
  }
  const QuerySet queries = PickQueries(m, num_queries, 226);

  // Euclidean and DTW via the standard scans.
  {
    const double brute =
        BruteStepsPerComparison(n, n, DistanceKind::kEuclidean, 0);
    ScanOptions ed;
    const double wedge = AverageStepsPerComparison(
        db, m, queries, ScanAlgorithm::kWedge, ed);
    std::printf("  %-22s %12.1f steps/cmp   %.6f of its brute force\n",
                "Euclidean wedge", wedge, wedge / brute);
  }
  {
    const double brute = BruteStepsPerComparison(n, n, DistanceKind::kDtw, 5);
    ScanOptions dtw;
    dtw.kind = DistanceKind::kDtw;
    dtw.band = 5;
    const double wedge = AverageStepsPerComparison(
        db, m, queries, ScanAlgorithm::kWedge, dtw);
    std::printf("  %-22s %12.1f steps/cmp   %.6f of its brute force\n",
                "DTW (R=5) wedge", wedge, wedge / brute);
  }
  // LCSS rides the same engine cascade as ED and DTW now (kind = kLcss):
  // wedge composition vs its own brute-force rotation scan.
  {
    ScanOptions lcss;
    lcss.kind = DistanceKind::kLcss;
    lcss.lcss.epsilon = 0.25;
    lcss.lcss.delta = 5;
    const double wedge_steps = AverageStepsPerComparison(
        db, m, queries, ScanAlgorithm::kWedge, lcss);
    const double brute_steps = AverageStepsPerComparison(
        db, m, queries, ScanAlgorithm::kBruteForce, lcss);
    std::printf("  %-22s %12.1f steps/cmp   %.6f of its brute force\n",
                "LCSS wedge", wedge_steps, wedge_steps / brute_steps);
  }
  std::printf("\n(each line normalises against the brute-force rotation "
              "scan of ITS OWN measure)\n\n");
  return 0;
}

}  // namespace
}  // namespace rotind::bench

int main() { return rotind::bench::Run(); }
