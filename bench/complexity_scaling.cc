/// Validates the paper's Section 2.3 claim of an empirical average
/// complexity of roughly O(n^1.06) per rotation-invariant comparison
/// (against the exact O(n n log n) of cyclic-string DP and the O(n^2) of
/// plain brute force): sweeps the series length n at fixed database size
/// and fits the exponent of average wedge-search steps per comparison via
/// least-squares on log-log data.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/datasets/synthetic.h"

namespace rotind::bench {
namespace {

double FitExponent(const std::vector<double>& xs,
                   const std::vector<double>& ys) {
  // Slope of least-squares fit of log(y) on log(x).
  const std::size_t k = xs.size();
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = k * sxx - sx * sx;
  return (k * sxy - sx * sy) / denom;
}

int Run() {
  const bool full = FullScale();
  const std::vector<std::size_t> lengths =
      full ? std::vector<std::size_t>{64, 128, 256, 512, 1024}
           : std::vector<std::size_t>{64, 128, 256, 512};
  const std::size_t m = full ? 4000 : 1000;
  const std::size_t num_queries = full ? 20 : 6;

  std::printf("Empirical complexity of one rotation-invariant comparison "
              "(m=%zu, %zu queries)\n\n",
              m, num_queries);
  std::printf("%8s  %16s  %16s\n", "n", "wedge ED steps", "wedge DTW steps");

  std::vector<double> xs, ed_steps, dtw_steps;
  for (std::size_t n : lengths) {
    const std::vector<Series> db = MakeProjectilePointsDatabase(m, n, 25);
    const QuerySet queries = PickQueries(m, num_queries, 125);

    ScanOptions ed;
    const double ed_avg = AverageStepsPerComparison(
        db, m, queries, ScanAlgorithm::kWedge, ed);

    ScanOptions dtw;
    dtw.kind = DistanceKind::kDtw;
    dtw.band = std::max(1, static_cast<int>(n) / 50);  // ~2% band
    const double dtw_avg = AverageStepsPerComparison(
        db, m, queries, ScanAlgorithm::kWedge, dtw);

    std::printf("%8zu  %16.1f  %16.1f\n", n, ed_avg, dtw_avg);
    xs.push_back(static_cast<double>(n));
    ed_steps.push_back(ed_avg);
    dtw_steps.push_back(dtw_avg);
  }

  std::printf("\nfitted scaling exponent (steps ~ n^a across the sweep):\n");
  std::printf("  Euclidean wedge search: a = %.3f\n",
              FitExponent(xs, ed_steps));
  std::printf("  DTW wedge search:       a = %.3f\n",
              FitExponent(xs, dtw_steps));

  // The paper's "empirical O(n^1.06)" is the EFFECTIVE exponent: the a
  // with steps == n^a at their operating point (n ~ 1000, m = 16000). It
  // shrinks as m grows because the best-so-far tightens with database
  // size; run with ROTIND_BENCH_SCALE=full for the closest comparison.
  std::printf("\neffective exponent log_n(steps) per point:\n");
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::printf("  n=%5.0f   ED a=%.3f   DTW a=%.3f\n", xs[i],
                std::log(ed_steps[i]) / std::log(xs[i]),
                std::log(dtw_steps[i]) / std::log(xs[i]));
  }
  std::printf("  (paper: effective a ~ 1.06 at n~1000, m=16000; brute "
              "force is a = 2 for ED and a = 3 unconstrained DTW)\n\n");
  return 0;
}

}  // namespace
}  // namespace rotind::bench

int main() { return rotind::bench::Run(); }
