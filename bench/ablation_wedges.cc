/// Ablation bench for the design choices DESIGN.md calls out:
///   1. dynamic K (paper Section 4.1) vs fixed wedge-set sizes;
///   2. clustered (group-average) wedge hierarchy vs a cheap contiguous
///      binary hierarchy;
///   3. the cost of mirror invariance and the savings of rotation-limited
///      queries.
/// Metric: average steps per object comparison (absolute and relative to
/// brute force), projectile-points workload.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/datasets/synthetic.h"

namespace rotind::bench {
namespace {

double RunWedge(const std::vector<Series>& db, std::size_t m,
                const QuerySet& queries, const ScanOptions& options) {
  return AverageStepsPerComparison(db, m, queries, ScanAlgorithm::kWedge,
                                   options);
}

int Run() {
  const bool full = FullScale();
  const std::size_t n = 251;
  const std::size_t m = full ? 8000 : 1000;
  const std::size_t num_queries = full ? 20 : 8;

  std::printf("Wedge ablations (projectile points, n=%zu, m=%zu, %zu "
              "queries)\n\n",
              n, m, num_queries);
  const std::vector<Series> db = MakeProjectilePointsDatabase(m, n, 19);
  const QuerySet queries = PickQueries(m, num_queries, 1219);
  const double brute =
      BruteStepsPerComparison(n, n, DistanceKind::kEuclidean, 0);

  auto report = [&](const char* label, double steps) {
    std::printf("  %-34s %12.1f steps/cmp   %.6f of brute\n", label, steps,
                steps / brute);
  };

  std::printf("[1] Wedge-set size K (Euclidean)\n");
  {
    ScanOptions options;
    options.wedge.dynamic_k = true;
    report("dynamic K (paper)", RunWedge(db, m, queries, options));
    for (int k : {1, 2, 8, 32, 128, static_cast<int>(n)}) {
      ScanOptions fixed;
      fixed.wedge.dynamic_k = false;
      fixed.wedge.fixed_k = k;
      char label[64];
      std::snprintf(label, sizeof(label), "fixed K = %d", k);
      report(label, RunWedge(db, m, queries, fixed));
    }
  }

  std::printf("\n[2] Hierarchy construction (Euclidean, dynamic K)\n");
  {
    ScanOptions clustered;
    report("group-average clustering (paper)",
           RunWedge(db, m, queries, clustered));
    ScanOptions contiguous;
    contiguous.wedge.hierarchy = WedgeHierarchy::kContiguous;
    report("contiguous binary hierarchy",
           RunWedge(db, m, queries, contiguous));
  }

  std::printf("\n[3] Invariance options (Euclidean, dynamic K)\n");
  {
    ScanOptions plain;
    report("rotation only", RunWedge(db, m, queries, plain));
    ScanOptions mirror;
    mirror.rotation.mirror = true;
    report("rotation + mirror (2x candidates)",
           RunWedge(db, m, queries, mirror));
    ScanOptions limited;
    limited.rotation.max_shift = static_cast<int>(n * 15 / 360);  // 15 deg
    report("rotation-limited (+/-15 deg)",
           RunWedge(db, m, queries, limited));
  }

  std::printf("\n[4] DTW wedge search (band R=5)\n");
  {
    const double brute_dtw =
        BruteStepsPerComparison(n, n, DistanceKind::kDtw, 5);
    ScanOptions dtw;
    dtw.kind = DistanceKind::kDtw;
    dtw.band = 5;
    const double dynamic = RunWedge(db, m, queries, dtw);
    std::printf("  %-34s %12.1f steps/cmp   %.6f of banded brute\n",
                "dynamic K (paper)", dynamic, dynamic / brute_dtw);
    for (int k : {2, 32, static_cast<int>(n)}) {
      ScanOptions fixed = dtw;
      fixed.wedge.dynamic_k = false;
      fixed.wedge.fixed_k = k;
      const double steps = RunWedge(db, m, queries, fixed);
      char label[64];
      std::snprintf(label, sizeof(label), "fixed K = %d", k);
      std::printf("  %-34s %12.1f steps/cmp   %.6f of banded brute\n", label,
                  steps, steps / brute_dtw);
    }
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace rotind::bench

int main() { return rotind::bench::Run(); }
