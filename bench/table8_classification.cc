/// Reproduces Table 8: leave-one-out 1-NN classification error of
/// rotation-invariant Euclidean distance (zero parameters) vs
/// rotation-invariant DTW (one parameter, the band R, learned from the
/// data) on ten datasets.
///
/// The datasets are the synthetic stand-ins documented in DESIGN.md;
/// absolute error rates are generator-dependent, but the paper's
/// qualitative findings must hold: DTW error <= ED error on most rows,
/// with the largest gaps on the leaf-like (warped) rows, and near-ties
/// elsewhere. Instance counts default to ~8% of the paper's
/// (ROTIND_BENCH_SCALE=full restores them; expect a long run).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/datasets/synthetic.h"
#include "src/eval/classify.h"

namespace rotind::bench {
namespace {

int Run() {
  const bool full = FullScale();
  const double scale = full ? 1.0 : 0.08;
  const std::vector<int> candidate_bands = {1, 2, 4};  // % of n, see below

  std::printf("Table 8: 1-NN leave-one-out error, Euclidean vs DTW\n");
  std::printf("(synthetic stand-ins at %.0f%% of paper instance counts%s)\n\n",
              scale * 100.0, full ? "" : "; ROTIND_BENCH_SCALE=full for 100%");
  std::printf("%-15s %8s %10s  %12s  %14s\n", "Name", "Classes", "Instances",
              "Euclidean(%)", "DTW(%) {R}");

  for (const SyntheticDatasetSpec& spec : Table8Specs(scale)) {
    const Dataset ds = MakeTable8Dataset(spec);

    const ClassificationResult ed = LeaveOneOutOneNnRotationInvariant(
        ds, DistanceKind::kEuclidean, 0);

    // Learn R on a training subsample (paper: "learned by looking only at
    // the training data"); candidates are small percentages of the series
    // length. Striding keeps the subsample class-balanced.
    std::vector<int> bands;
    for (int pct : candidate_bands) {
      bands.push_back(
          std::max(1, static_cast<int>(ds.length()) * pct / 100));
    }
    Dataset train;
    const std::size_t stride = std::max<std::size_t>(1, ds.size() / 120);
    for (std::size_t i = 0; i < ds.size(); i += stride) {
      train.items.push_back(ds.items[i]);
      train.labels.push_back(ds.labels[i]);
    }
    const int band = LearnBestBand(train, bands);
    const ClassificationResult dtw =
        LeaveOneOutOneNnRotationInvariant(ds, DistanceKind::kDtw, band);

    std::printf("%-15s %8d %10zu  %12.2f  %11.2f {%d}\n", spec.name.c_str(),
                spec.num_classes, ds.size(), 100.0 * ed.error_rate(),
                100.0 * dtw.error_rate(), band);
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace rotind::bench

int main() { return rotind::bench::Run(); }
