/// Reproduces Figure 24 — the fraction of items retrieved from disk to
/// answer an exact rotation-invariant 1-NN query, for signature
/// dimensionalities D in {4, 8, 16, 32}, on the Projectile Points and
/// Heterogeneous databases, under both Euclidean distance (VP-tree over
/// FFT-magnitude signatures, paper Table 7) and DTW (PAA candidate scan,
/// see DESIGN.md substitutions) — and extends it across storage backends:
/// every configuration runs once against the paper-parity SimulatedBackend
/// (in-memory data, counted page touches) and once against a real paged
/// RIDX file behind a BufferPool (built with BuildIndexFile, opened with
/// OpenFromFile). Both backends must return bit-identical neighbors; the
/// bench exits nonzero if they ever disagree.
///
///   fig24_disk_access [BENCH_storage.json]
///
/// The JSON records, per workload x D x measure: object fetches, page
/// reads, pool hit rate, eviction and byte counts, and wall time for each
/// backend — the numbers CI archives next to BENCH_scan.json.
///
/// Expected shape: small fetch fractions (the paper shows <= ~12%),
/// decreasing as D grows, with DTW retrieving somewhat more than
/// Euclidean; the file backend's page reads track the simulated backend's
/// up to pool reuse (hits cost no read).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/datasets/synthetic.h"
#include "src/index/candidate_scan.h"
#include "src/index/index_io.h"
#include "src/storage/backend.h"

namespace rotind::bench {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// BufferPool capacity for the file-backed runs: deliberately much smaller
/// than the data section (2000 x 251 doubles spans ~1000 4KiB pages) so
/// eviction pressure is real and the hit rate is informative.
constexpr std::size_t kPoolPages = 128;

/// Queries are noisy rotations of database members (querying the member
/// itself would hand the index a distance-0 nearest neighbour and make
/// pruning degenerate; removing the member per query would force an index
/// rebuild, so a perturbed copy stands in for the paper's
/// removed-from-database protocol). Materialized once per (workload, D) so
/// the simulated and file runs see byte-identical queries.
std::vector<Series> MakeNoisyQueries(const std::vector<Series>& db,
                                     const QuerySet& queries,
                                     std::size_t dims) {
  Rng rng(4242 + dims);
  std::vector<Series> out;
  out.reserve(queries.query_indices.size());
  for (std::size_t qi : queries.query_indices) {
    Series q = RotateLeft(db[qi],
                          static_cast<long>(rng.NextBounded(db[qi].size())));
    for (double& v : q) v += rng.Gaussian(0.0, 0.05);
    ZNormalize(&q);
    out.push_back(std::move(q));
  }
  return out;
}

/// Accumulated I/O accounting for one (backend, configuration) run, plus
/// the per-query answers so the two backends can be diffed exactly.
struct BackendRun {
  std::uint64_t object_fetches = 0;
  std::uint64_t page_reads = 0;
  double fetch_fraction_sum = 0.0;
  double wall_seconds = 0.0;
  std::vector<int> best_index;
  std::vector<double> best_distance;
};

BackendRun RunQueries(RotationInvariantIndex& index,
                      const std::vector<Series>& queries) {
  BackendRun run;
  const auto t0 = Clock::now();
  for (const Series& q : queries) {
    const auto r = index.NearestNeighbor(q);
    run.object_fetches += r.object_fetches;
    run.page_reads += r.page_reads;
    run.fetch_fraction_sum += r.fetch_fraction;
    run.best_index.push_back(r.best_index);
    run.best_distance.push_back(r.best_distance);
  }
  run.wall_seconds = Seconds(t0, Clock::now());
  return run;
}

/// One row of the storage comparison: a (workload, D, measure) cell run on
/// both backends.
struct StorageRow {
  std::string workload;
  std::string kind;
  std::size_t dims = 0;
  std::size_t queries = 0;
  BackendRun simulated;
  BackendRun file;
  storage::PoolCounters pool;
  bool identical = false;
};

double PoolHitRate(const storage::PoolCounters& c) {
  const std::uint64_t pins = c.hits + c.misses;
  return pins == 0 ? 0.0
                   : static_cast<double>(c.hits) / static_cast<double>(pins);
}

int Run(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_storage.json";
  const bool full = FullScale();
  const std::size_t num_queries = full ? 50 : 10;
  const std::vector<std::size_t> dims_list = {4, 8, 16, 32};

  struct Workload {
    const char* name;
    std::vector<Series> db;
    int band;
  };
  std::vector<Workload> workloads;
  {
    const std::size_t m = full ? 16000 : 2000;
    workloads.push_back(
        {"Projectile Points", MakeProjectilePointsDatabase(m, 251, 24), 5});
  }
  {
    const std::size_t m = full ? 5844 : 1000;
    const std::size_t n = full ? 1024 : 512;
    workloads.push_back(
        {"Heterogeneous", MakeHeterogeneousDatabase(m, n, 240), 5});
  }

  std::printf("Figure 24: fraction of objects retrieved from disk "
              "(%zu queries%s)\n\n",
              num_queries, full ? ", full scale" : "");
  bool all_identical = true;
  std::vector<StorageRow> rows;
  for (const Workload& w : workloads) {
    std::printf("%s (m=%zu, n=%zu)\n", w.name, w.db.size(),
                w.db.empty() ? 0 : w.db[0].size());
    std::printf("  %6s  %18s  %18s\n", "D", "Wedge: Euclidean", "Wedge: DTW");
    const QuerySet queries = PickQueries(w.db.size(), num_queries, 124);

    const std::string index_path = out_path + ".ridx";
    Dataset dataset;
    dataset.items = w.db;
    for (std::size_t dims : dims_list) {
      // One RIDX file per (workload, D): it carries both signature
      // families, so the Euclidean and DTW file runs share it.
      IndexBuildOptions build;
      build.sig_dims = dims;
      build.paa_dims = dims;
      const Status built = BuildIndexFile(dataset, build, index_path);
      if (!built.ok()) {
        std::fprintf(stderr, "index build failed: %s\n",
                     built.message().c_str());
        return 1;
      }

      const std::vector<Series> noisy =
          MakeNoisyQueries(w.db, queries, dims);
      std::vector<double> table_fractions;
      for (const DistanceKind kind :
           {DistanceKind::kEuclidean, DistanceKind::kDtw}) {
        RotationInvariantIndex::Options options;
        options.dims = dims;
        options.kind = kind;
        options.band = w.band;

        StorageRow row;
        row.workload = w.name;
        row.kind = DistanceKindName(kind);
        row.dims = dims;
        row.queries = noisy.size();
        {
          RotationInvariantIndex index(w.db, options);
          row.simulated = RunQueries(index, noisy);
        }
        {
          auto opened = RotationInvariantIndex::OpenFromFile(
              index_path, options, kPoolPages);
          if (!opened.ok()) {
            std::fprintf(stderr, "index open failed: %s\n",
                         opened.status().message().c_str());
            return 1;
          }
          row.file = RunQueries(**opened, noisy);
          row.pool = static_cast<const storage::FileBackend&>(
                         (*opened)->backend())
                         .pool()
                         .counters();
        }
        row.identical =
            row.simulated.best_index == row.file.best_index &&
            row.simulated.best_distance == row.file.best_distance;
        if (!row.identical) {
          std::fprintf(stderr,
                       "%s D=%zu %s: file backend DISAGREES with simulated "
                       "backend\n",
                       row.workload.c_str(), dims, row.kind.c_str());
          all_identical = false;
        }
        table_fractions.push_back(
            row.simulated.fetch_fraction_sum /
            static_cast<double>(row.queries));
        rows.push_back(std::move(row));
      }
      std::printf("  %6zu  %18.6f  %18.6f\n", dims, table_fractions[0],
                  table_fractions[1]);
    }
    std::remove(index_path.c_str());
    std::printf("\n");
  }

  std::printf("Storage backends (pool=%zu pages)\n", kPoolPages);
  std::printf("  %-18s %4s %10s  %10s %9s  %10s %8s %9s\n", "workload", "D",
              "kind", "sim pages", "sim s", "file pages", "hit rate",
              "file s");
  for (const StorageRow& r : rows) {
    std::printf("  %-18s %4zu %10s  %10llu %9.3f  %10llu %8.3f %9.3f%s\n",
                r.workload.c_str(), r.dims, r.kind.c_str(),
                static_cast<unsigned long long>(r.simulated.page_reads),
                r.simulated.wall_seconds,
                static_cast<unsigned long long>(r.file.page_reads),
                PoolHitRate(r.pool), r.file.wall_seconds,
                r.identical ? "" : "  MISMATCH");
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out,
               "  \"scale\": \"%s\", \"queries\": %zu, \"pool_pages\": "
               "%zu,\n",
               full ? "full" : "quick", num_queries, kPoolPages);
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const StorageRow& r = rows[i];
    std::fprintf(
        out,
        "    {\"workload\": \"%s\", \"kind\": \"%s\", \"dims\": %zu, "
        "\"queries\": %zu, \"identical\": %s,\n"
        "     \"simulated\": {\"object_fetches\": %llu, \"page_reads\": "
        "%llu, \"fetch_fraction\": %.6f, \"wall_seconds\": %.6f},\n"
        "     \"file\": {\"object_fetches\": %llu, \"page_reads\": %llu, "
        "\"pool_hits\": %llu, \"pool_misses\": %llu, \"pool_evictions\": "
        "%llu, \"pool_hit_rate\": %.6f, \"bytes_read\": %llu, "
        "\"wall_seconds\": %.6f}}%s\n",
        r.workload.c_str(), r.kind.c_str(), r.dims, r.queries,
        r.identical ? "true" : "false",
        static_cast<unsigned long long>(r.simulated.object_fetches),
        static_cast<unsigned long long>(r.simulated.page_reads),
        r.simulated.fetch_fraction_sum / static_cast<double>(r.queries),
        r.simulated.wall_seconds,
        static_cast<unsigned long long>(r.file.object_fetches),
        static_cast<unsigned long long>(r.file.page_reads),
        static_cast<unsigned long long>(r.pool.hits),
        static_cast<unsigned long long>(r.pool.misses),
        static_cast<unsigned long long>(r.pool.evictions),
        PoolHitRate(r.pool),
        static_cast<unsigned long long>(r.pool.bytes_read),
        r.file.wall_seconds, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace rotind::bench

int main(int argc, char** argv) { return rotind::bench::Run(argc, argv); }
