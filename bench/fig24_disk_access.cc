/// Reproduces Figure 24: the fraction of items retrieved from (simulated)
/// disk to answer an exact rotation-invariant 1-NN query, for signature
/// dimensionalities D in {4, 8, 16, 32}, on the Projectile Points and
/// Heterogeneous databases, under both Euclidean distance (VP-tree over
/// FFT-magnitude signatures, paper Table 7) and DTW (PAA candidate scan,
/// see DESIGN.md substitutions).
///
/// Expected shape: small fractions (the paper shows <= ~12%), decreasing
/// as D grows, with DTW retrieving somewhat more than Euclidean.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/datasets/synthetic.h"
#include "src/index/candidate_scan.h"

namespace rotind::bench {
namespace {

double AverageFetchFraction(const std::vector<Series>& db, std::size_t dims,
                            DistanceKind kind, int band,
                            const QuerySet& queries) {
  RotationInvariantIndex::Options options;
  options.dims = dims;
  options.kind = kind;
  options.band = band;
  // Queries are noisy rotations of database members (querying the member
  // itself would hand the index a distance-0 nearest neighbour and make
  // pruning degenerate; removing the member per query would force an index
  // rebuild, so a perturbed copy stands in for the paper's
  // removed-from-database protocol).
  RotationInvariantIndex index(db, options);
  Rng rng(4242 + dims);
  double total = 0.0;
  for (std::size_t qi : queries.query_indices) {
    Series q = RotateLeft(db[qi],
                          static_cast<long>(rng.NextBounded(db[qi].size())));
    for (double& v : q) v += rng.Gaussian(0.0, 0.05);
    ZNormalize(&q);
    const auto r = index.NearestNeighbor(q);
    total += r.fetch_fraction;
  }
  return total / static_cast<double>(queries.query_indices.size());
}

int Run() {
  const bool full = FullScale();
  const std::size_t num_queries = full ? 50 : 10;
  const std::vector<std::size_t> dims_list = {4, 8, 16, 32};

  struct Workload {
    const char* name;
    std::vector<Series> db;
    int band;
  };
  std::vector<Workload> workloads;
  {
    const std::size_t m = full ? 16000 : 2000;
    workloads.push_back(
        {"Projectile Points", MakeProjectilePointsDatabase(m, 251, 24), 5});
  }
  {
    const std::size_t m = full ? 5844 : 1000;
    const std::size_t n = full ? 1024 : 512;
    workloads.push_back(
        {"Heterogeneous", MakeHeterogeneousDatabase(m, n, 240), 5});
  }

  std::printf("Figure 24: fraction of objects retrieved from disk "
              "(%zu queries%s)\n\n",
              num_queries, full ? ", full scale" : "");
  for (const Workload& w : workloads) {
    std::printf("%s (m=%zu, n=%zu)\n", w.name, w.db.size(),
                w.db.empty() ? 0 : w.db[0].size());
    std::printf("  %6s  %18s  %18s\n", "D", "Wedge: Euclidean", "Wedge: DTW");
    const QuerySet queries = PickQueries(w.db.size(), num_queries, 124);
    for (std::size_t dims : dims_list) {
      const double ed = AverageFetchFraction(
          w.db, dims, DistanceKind::kEuclidean, w.band, queries);
      const double dtw = AverageFetchFraction(
          w.db, dims, DistanceKind::kDtw, w.band, queries);
      std::printf("  %6zu  %18.6f  %18.6f\n", dims, ed, dtw);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace rotind::bench

int main() { return rotind::bench::Run(); }
