/// Reproduces Figure 22: relative performance of the four Euclidean rivals
/// on star light curves (paper Section 2.4: phase-folded periodic variable
/// stars have no natural starting point, so matching them IS the rotation-
/// invariance problem).
///
/// Paper: the hand-labelled set of 953 curves, n = 1024. Expected shape:
/// wedge slightly slower below m ~ 125 (setup overhead), then pulls an
/// order of magnitude ahead of the FFT approach by the full dataset.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/datasets/synthetic.h"

namespace rotind::bench {
namespace {

int Run() {
  const bool full = FullScale();
  const std::size_t n = full ? 1024 : 256;
  const std::vector<std::size_t> sizes = {32, 64, 125, 250, 500, 953};
  const std::size_t num_queries = full ? 50 : 8;
  const std::size_t m_max = sizes.back();

  std::printf("Figure 22: Light Curves, Euclidean (n=%zu, %zu queries%s)\n",
              n, num_queries, full ? ", full scale" : "");
  const std::vector<Series> db = MakeLightCurveDatabase(m_max, n, /*seed=*/22);
  const QuerySet queries = PickQueries(m_max, num_queries, /*seed=*/122);

  const std::vector<const char*> names = {"brute", "fft", "early_ab",
                                          "wedge"};
  PrintHeader("relative steps per comparison (1.0 = brute force)", names);

  ScanOptions options;
  options.kind = DistanceKind::kEuclidean;
  const double brute =
      BruteStepsPerComparison(n, n, DistanceKind::kEuclidean, 0);

  for (std::size_t m : sizes) {
    const double fft = AverageStepsPerComparison(
        db, m, queries, ScanAlgorithm::kFftLowerBound, options);
    const double ea = AverageStepsPerComparison(
        db, m, queries, ScanAlgorithm::kEarlyAbandon, options);
    const double wedge = AverageStepsPerComparison(
        db, m, queries, ScanAlgorithm::kWedge, options);
    PrintRow(m, {1.0, fft / brute, ea / brute, wedge / brute}, names);
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace rotind::bench

int main() { return rotind::bench::Run(); }
