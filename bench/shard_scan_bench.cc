/// Sharded-index benchmark with machine-readable output.
///
/// Measures the three properties the sharded refactor promises:
///
///  1. Shard scaling — 1-NN latency over the same database split into
///     1/2/4/8 shards, serial vs parallel search, with the answer
///     cross-checked against the 1-shard serial run (exactness is never
///     traded for speed).
///  2. Pruning parity — aggregate implementation-free step counts for the
///     parallel SharedBound exchange vs the serial concatenated scan. The
///     exchange only tightens thresholds, so parallel steps should stay
///     within noise of serial; a large ratio means the best-so-far is not
///     propagating across shard workers.
///  3. Compaction throughput — rows/second for folding a delta segment
///     (inserts + tombstones) into a fresh single-shard generation via
///     BuildIndexFile + atomic manifest swap.
///
///   shard_scan_bench [BENCH_shard.json]
///
/// Scale: ROTIND_BENCH_SCALE=full for paper-sized inputs.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/datasets/synthetic.h"
#include "src/index/index_io.h"
#include "src/index/sharded_index.h"
#include "src/storage/manifest.h"

namespace rotind::bench {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct ShardRow {
  std::size_t shards = 0;
  bool parallel = false;
  double wall_seconds = 0.0;
  std::uint64_t total_steps = 0;
  bool answers_match_reference = true;
};

/// Builds an uneven contiguous shard split of `db` and publishes its
/// manifest. Returns the manifest path.
std::string BuildShardSet(const std::vector<Series>& db,
                          const std::string& dir, std::size_t shards,
                          const IndexBuildOptions& build) {
  const std::string manifest_path =
      dir + "/s" + std::to_string(shards) + ".rman";
  storage::Manifest manifest;
  manifest.generation = 1;
  const std::size_t per = db.size() / shards;
  const std::size_t extra = db.size() % shards;
  std::size_t row = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t count = per + (s < extra ? 1 : 0);
    const std::string file =
        "s" + std::to_string(shards) + "-" + std::to_string(s) + ".ridx";
    Dataset part;
    part.items.assign(db.begin() + static_cast<std::ptrdiff_t>(row),
                      db.begin() + static_cast<std::ptrdiff_t>(row + count));
    const Status built = BuildIndexFile(part, build, dir + "/" + file);
    if (!built.ok()) {
      std::fprintf(stderr, "shard build failed: %s\n",
                   built.ToString().c_str());
      std::exit(1);
    }
    manifest.shards.push_back(storage::ManifestShard{
        file, static_cast<std::uint64_t>(count), db[0].size()});
    row += count;
  }
  const Status wrote = storage::WriteManifest(manifest, manifest_path);
  if (!wrote.ok()) {
    std::fprintf(stderr, "manifest write failed: %s\n",
                 wrote.ToString().c_str());
    std::exit(1);
  }
  return manifest_path;
}

int Run(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_shard.json";
  const bool full = FullScale();
  const std::size_t n = full ? 251 : 64;
  const std::size_t m = full ? 4000 : 400;
  const std::size_t num_queries = full ? 40 : 12;
  const std::size_t delta_rows = full ? 200 : 40;

  const std::vector<Series> db = MakeProjectilePointsDatabase(m, n, 2006);
  const std::vector<Series> extra =
      MakeProjectilePointsDatabase(delta_rows, n, 2007);
  const QuerySet qs = PickQueries(m, num_queries, 42);

  const std::string dir =
      "/tmp/rotind_shard_bench." + std::to_string(::getpid());
  std::string cleanup = "rm -rf " + dir + " && mkdir -p " + dir;
  if (std::system(cleanup.c_str()) != 0) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    return 1;
  }

  IndexBuildOptions build;
  build.sig_dims = 8;
  build.paa_dims = 8;
  build.page_size_bytes = 4096;

  // Reference answers: 1 shard, serial — definitionally the monolithic
  // engine over the whole database.
  std::vector<ScanResult> reference;
  std::vector<ShardRow> rows;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    const std::string manifest = BuildShardSet(db, dir, shards, build);
    for (const bool parallel : {false, true}) {
      ShardedOptions options;
      options.parallel_search = parallel;
      options.num_threads = 4;
      options.pool_pages = 64;
      auto opened = ShardedIndex::Open(manifest, options);
      if (!opened.ok()) {
        std::fprintf(stderr, "open failed: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      ShardRow row;
      row.shards = shards;
      row.parallel = parallel;
      const Clock::time_point t0 = Clock::now();
      std::vector<ScanResult> answers;
      for (const std::size_t qi : qs.query_indices) {
        auto r = (*opened)->Search(db[qi]);
        if (!r.ok()) {
          std::fprintf(stderr, "search failed: %s\n",
                       r.status().ToString().c_str());
          return 1;
        }
        row.total_steps += r->counter.total_steps();
        answers.push_back(*std::move(r));
      }
      row.wall_seconds = Seconds(t0, Clock::now());
      if (reference.empty()) {
        reference = answers;
      } else {
        for (std::size_t i = 0; i < answers.size(); ++i) {
          if (answers[i].best_index != reference[i].best_index ||
              answers[i].best_distance != reference[i].best_distance) {
            row.answers_match_reference = false;
          }
        }
      }
      std::printf("  %zu shard%s %-8s  %.4f s  steps=%llu  exact=%s\n",
                  shards, shards == 1 ? " " : "s",
                  parallel ? "parallel" : "serial", row.wall_seconds,
                  static_cast<unsigned long long>(row.total_steps),
                  row.answers_match_reference ? "yes" : "NO");
      rows.push_back(row);
    }
  }

  // Pruning parity at the widest split: parallel aggregate steps over
  // serial steps. 1.0 = the SharedBound exchange loses nothing.
  double parity = 0.0;
  for (const ShardRow& row : rows) {
    if (row.shards == 8 && !row.parallel && row.total_steps > 0) {
      for (const ShardRow& other : rows) {
        if (other.shards == 8 && other.parallel) {
          parity = static_cast<double>(other.total_steps) /
                   static_cast<double>(row.total_steps);
        }
      }
    }
  }
  std::printf("  pruning parity (parallel/serial steps @ 8 shards): %.4f\n",
              parity);

  // Compaction throughput: stage the delta, fold it into generation 2.
  const std::string manifest4 = dir + "/s4.rman";
  ShardedOptions compact_options;
  auto compact_index = ShardedIndex::Open(manifest4, compact_options);
  if (!compact_index.ok()) return 1;
  for (const Series& s : extra) {
    if (!(*compact_index)->Insert(s).ok()) return 1;
  }
  for (std::uint64_t id = 0; id < delta_rows / 2; ++id) {
    if (!(*compact_index)->Remove(id * 2).ok()) return 1;
  }
  const std::size_t live = (*compact_index)->live_size();
  const Clock::time_point c0 = Clock::now();
  auto generation = (*compact_index)->Compact(build);
  const double compact_seconds = Seconds(c0, Clock::now());
  if (!generation.ok()) {
    std::fprintf(stderr, "compaction failed: %s\n",
                 generation.status().ToString().c_str());
    return 1;
  }
  const double rows_per_second =
      compact_seconds > 0.0 ? static_cast<double>(live) / compact_seconds
                            : 0.0;
  std::printf("  compaction: %zu live rows -> generation %llu in %.4f s "
              "(%.0f rows/s)\n",
              live, static_cast<unsigned long long>(*generation),
              compact_seconds, rows_per_second);

  bool all_exact = true;
  for (const ShardRow& row : rows) {
    all_exact = all_exact && row.answers_match_reference;
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out,
               "  \"dataset\": {\"generator\": \"projectile-points\", "
               "\"m\": %zu, \"n\": %zu, \"queries\": %zu},\n",
               m, n, num_queries);
  std::fprintf(out, "  \"shard_scaling\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "    {\"shards\": %zu, \"mode\": \"%s\", "
                 "\"wall_seconds\": %.6f, \"total_steps\": %llu, "
                 "\"exact\": %s}%s\n",
                 rows[i].shards, rows[i].parallel ? "parallel" : "serial",
                 rows[i].wall_seconds,
                 static_cast<unsigned long long>(rows[i].total_steps),
                 rows[i].answers_match_reference ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"pruning_parity_parallel_over_serial\": %.6f,\n",
               parity);
  std::fprintf(out,
               "  \"compaction\": {\"live_rows\": %zu, \"delta_inserts\": "
               "%zu, \"tombstones\": %zu, \"generation\": %llu, "
               "\"wall_seconds\": %.6f, \"rows_per_second\": %.1f},\n",
               live, extra.size(), delta_rows / 2,
               static_cast<unsigned long long>(*generation), compact_seconds,
               rows_per_second);
  std::fprintf(out, "  \"all_exact\": %s\n", all_exact ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  std::string remove = "rm -rf " + dir;
  (void)std::system(remove.c_str());
  return all_exact ? 0 : 1;
}

}  // namespace
}  // namespace rotind::bench

int main(int argc, char** argv) { return rotind::bench::Run(argc, argv); }
