/// Reproduces Figure 21: relative performance on the Heterogeneous dataset
/// (a mixture of all shape families plus light curves) under Euclidean
/// distance (left panel) and DTW (right panel).
///
/// Paper: n = 1024, m up to 8000, 50 queries. Default scale shrinks n/m
/// (ROTIND_BENCH_SCALE=full restores the paper's sizes). Expected shape:
/// the wedge takes slightly longer to beat early abandon than on the
/// homogeneous data, but ends ~2 orders ahead of the Euclidean rivals and
/// ~1 order ahead of early abandon for DTW (paper: 3976x vs brute force).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/datasets/synthetic.h"

namespace rotind::bench {
namespace {

int Run() {
  const bool full = FullScale();
  const std::size_t n = full ? 1024 : 512;
  const int band = 5;
  const std::vector<std::size_t> sizes =
      full ? std::vector<std::size_t>{32, 64, 125, 250, 500, 1000, 2000,
                                      4000, 8000}
           : std::vector<std::size_t>{32, 64, 125, 250, 500, 1000};
  const std::size_t num_queries = full ? 50 : 4;
  const std::size_t m_max = sizes.back();

  std::printf("Figure 21: Heterogeneous dataset (n=%zu, %zu queries%s)\n", n,
              num_queries, full ? ", full scale" : "");
  const std::vector<Series> db =
      MakeHeterogeneousDatabase(m_max, n, /*seed=*/21);
  const QuerySet queries = PickQueries(m_max, num_queries, /*seed=*/121);

  // Left panel: Euclidean.
  {
    const std::vector<const char*> names = {"brute", "fft", "early_ab",
                                            "wedge"};
    PrintHeader("[Euclidean] relative steps per comparison", names);
    ScanOptions options;
    options.kind = DistanceKind::kEuclidean;
    const double brute =
        BruteStepsPerComparison(n, n, DistanceKind::kEuclidean, 0);
    for (std::size_t m : sizes) {
      const double fft = AverageStepsPerComparison(
          db, m, queries, ScanAlgorithm::kFftLowerBound, options);
      const double ea = AverageStepsPerComparison(
          db, m, queries, ScanAlgorithm::kEarlyAbandon, options);
      const double wedge = AverageStepsPerComparison(
          db, m, queries, ScanAlgorithm::kWedge, options);
      PrintRow(m, {1.0, fft / brute, ea / brute, wedge / brute}, names);
    }
    std::printf("\n");
  }

  // Right panel: DTW.
  {
    const std::vector<const char*> names = {"brute", "brute_R5", "early_ab",
                                            "wedge"};
    PrintHeader("[DTW R=5] relative steps per comparison", names);
    ScanOptions options;
    options.kind = DistanceKind::kDtw;
    options.band = band;
    const double brute_full =
        BruteStepsPerComparison(n, n, DistanceKind::kDtw, -1);
    const double brute_banded =
        BruteStepsPerComparison(n, n, DistanceKind::kDtw, band);
    double last_wedge = 0.0;
    for (std::size_t m : sizes) {
      const double ea = AverageStepsPerComparison(
          db, m, queries, ScanAlgorithm::kEarlyAbandon, options);
      const double wedge = AverageStepsPerComparison(
          db, m, queries, ScanAlgorithm::kWedge, options);
      PrintRow(m, {1.0, brute_banded / brute_full, ea / brute_full,
                   wedge / brute_full},
               names);
      last_wedge = wedge;
    }
    std::printf("\nwedge speedup vs unconstrained brute force at m=%zu: "
                "%.0fx\n\n",
                m_max, brute_full / last_wedge);
  }
  return 0;
}

}  // namespace
}  // namespace rotind::bench

int main() { return rotind::bench::Run(); }
