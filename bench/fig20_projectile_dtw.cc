/// Reproduces Figure 20: relative performance on the Projectile Points
/// database under rotation-invariant DTW (Sakoe-Chiba band R = 5).
///
/// Rivals: unconstrained full-matrix brute force, banded brute force
/// ("Brute force, R=5"), early-abandoning scan, and the wedge approach.
/// Both brute-force variants are data-independent and costed in closed
/// form (validated against real runs in tests/scan_test.cc). Paper shape:
/// wedge wins even for m = 3 (a single brute-force rotation comparison
/// dwarfs the wedge build), ending >5000x faster than brute force; the
/// inset at max m shows wedge ~ an order of magnitude below early abandon.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/datasets/synthetic.h"

namespace rotind::bench {
namespace {

int Run() {
  const bool full = FullScale();
  const std::size_t n = 251;
  const int band = 5;
  const std::vector<std::size_t> sizes =
      full ? std::vector<std::size_t>{32, 64, 125, 250, 500, 1000, 2000,
                                      4000, 8000, 16000}
           : std::vector<std::size_t>{32, 64, 125, 250, 500, 1000};
  const std::size_t num_queries = full ? 50 : 5;
  const std::size_t m_max = sizes.back();

  std::printf("Figure 20: Projectile Points, DTW R=%d (n=%zu, %zu queries"
              "%s)\n",
              band, n, num_queries, full ? ", full scale" : "");
  const std::vector<Series> db =
      MakeProjectilePointsDatabase(m_max, n, /*seed=*/20);
  const QuerySet queries = PickQueries(m_max, num_queries, /*seed=*/120);

  const std::vector<const char*> names = {"brute", "brute_R5", "early_ab",
                                          "wedge"};
  PrintHeader("relative steps per comparison (1.0 = unconstrained brute)",
              names);

  ScanOptions options;
  options.kind = DistanceKind::kDtw;
  options.band = band;
  const double brute_full =
      BruteStepsPerComparison(n, n, DistanceKind::kDtw, -1);
  const double brute_banded =
      BruteStepsPerComparison(n, n, DistanceKind::kDtw, band);

  double last_ea = 0.0;
  double last_wedge = 0.0;
  for (std::size_t m : sizes) {
    const double ea = AverageStepsPerComparison(
        db, m, queries, ScanAlgorithm::kEarlyAbandon, options);
    const double wedge = AverageStepsPerComparison(
        db, m, queries, ScanAlgorithm::kWedge, options);
    PrintRow(m, {1.0, brute_banded / brute_full, ea / brute_full,
                 wedge / brute_full},
             names);
    last_ea = ea;
    last_wedge = wedge;
  }

  std::printf("\nInset at m=%zu (relative to banded brute force):\n", m_max);
  std::printf("  brute_R5 %10.6f   early_ab %10.6f   wedge %10.6f\n", 1.0,
              last_ea / brute_banded, last_wedge / brute_banded);
  std::printf("  wedge speedup vs unconstrained brute force: %.0fx\n\n",
              brute_full / last_wedge);
  return 0;
}

}  // namespace
}  // namespace rotind::bench

int main() { return rotind::bench::Run(); }
