/// Reproduces Figure 19: relative performance of four exact algorithms on
/// the Projectile Points database under rotation-invariant Euclidean
/// distance, as the database grows.
///
/// Paper: m in {32..16000}, n = 251, 50 random queries; y-axis = average
/// steps per comparison relative to brute force. Expected shape: the wedge
/// approach starts slightly WORSE than FFT / early-abandon (it pays an
/// O(n^2) wedge-construction cost per query), breaks even by m ~ 64, and
/// ends 1-2 orders of magnitude ahead (paper: ~2 orders vs brute force).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/datasets/synthetic.h"

namespace rotind::bench {
namespace {

int Run() {
  const bool full = FullScale();
  const std::size_t n = 251;
  const std::vector<std::size_t> sizes =
      full ? std::vector<std::size_t>{32, 64, 125, 250, 500, 1000, 2000,
                                      4000, 8000, 16000}
           : std::vector<std::size_t>{32, 64, 125, 250, 500, 1000, 2000};
  const std::size_t num_queries = full ? 50 : 10;
  const std::size_t m_max = sizes.back();

  std::printf("Figure 19: Projectile Points, Euclidean (n=%zu, %zu queries"
              "%s)\n",
              n, num_queries, full ? ", full scale" : "");
  const std::vector<Series> db =
      MakeProjectilePointsDatabase(m_max, n, /*seed=*/19);
  const QuerySet queries = PickQueries(m_max, num_queries, /*seed=*/119);

  const std::vector<const char*> names = {"brute", "fft", "early_ab",
                                          "wedge"};
  PrintHeader("relative steps per comparison (1.0 = brute force)", names);

  ScanOptions options;
  options.kind = DistanceKind::kEuclidean;
  const double brute =
      BruteStepsPerComparison(n, n, DistanceKind::kEuclidean, 0);

  for (std::size_t m : sizes) {
    const double fft = AverageStepsPerComparison(
        db, m, queries, ScanAlgorithm::kFftLowerBound, options);
    const double ea = AverageStepsPerComparison(
        db, m, queries, ScanAlgorithm::kEarlyAbandon, options);
    const double wedge = AverageStepsPerComparison(
        db, m, queries, ScanAlgorithm::kWedge, options);
    PrintRow(m, {1.0, fft / brute, ea / brute, wedge / brute}, names);
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace rotind::bench

int main() { return rotind::bench::Run(); }
