/// Reproduces Figure 23: relative performance on star light curves under
/// rotation-invariant DTW. The paper's Table 8 learns R = 3 (as a
/// percentage of a length-1024 series we keep the same proportional band).
///
/// Expected shape: as with shapes, the wedge approach wins from tiny m and
/// ends orders of magnitude ahead of both brute-force variants.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/datasets/synthetic.h"

namespace rotind::bench {
namespace {

int Run() {
  const bool full = FullScale();
  const std::size_t n = full ? 1024 : 256;
  const int band = std::max(1, static_cast<int>(n * 3 / 100));  // R ~ 3%
  const std::vector<std::size_t> sizes = {32, 64, 125, 250, 500, 953};
  const std::size_t num_queries = full ? 50 : 4;
  const std::size_t m_max = sizes.back();

  std::printf("Figure 23: Light Curves, DTW R=%d (n=%zu, %zu queries%s)\n",
              band, n, num_queries, full ? ", full scale" : "");
  const std::vector<Series> db = MakeLightCurveDatabase(m_max, n, /*seed=*/23);
  const QuerySet queries = PickQueries(m_max, num_queries, /*seed=*/123);

  const std::vector<const char*> names = {"brute", "brute_R", "early_ab",
                                          "wedge"};
  PrintHeader("relative steps per comparison (1.0 = unconstrained brute)",
              names);

  ScanOptions options;
  options.kind = DistanceKind::kDtw;
  options.band = band;
  const double brute_full =
      BruteStepsPerComparison(n, n, DistanceKind::kDtw, -1);
  const double brute_banded =
      BruteStepsPerComparison(n, n, DistanceKind::kDtw, band);

  double last_wedge = 0.0;
  for (std::size_t m : sizes) {
    const double ea = AverageStepsPerComparison(
        db, m, queries, ScanAlgorithm::kEarlyAbandon, options);
    const double wedge = AverageStepsPerComparison(
        db, m, queries, ScanAlgorithm::kWedge, options);
    PrintRow(m, {1.0, brute_banded / brute_full, ea / brute_full,
                 wedge / brute_full},
             names);
    last_wedge = wedge;
  }
  std::printf("\nwedge speedup vs unconstrained brute force at m=%zu: %.0fx"
              "\n\n",
              m_max, brute_full / last_wedge);
  return 0;
}

}  // namespace
}  // namespace rotind::bench

int main() { return rotind::bench::Run(); }
