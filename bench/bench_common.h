#ifndef ROTIND_BENCH_BENCH_COMMON_H_
#define ROTIND_BENCH_BENCH_COMMON_H_

/// Shared infrastructure for the figure/table reproduction benches.
///
/// Methodology follows the paper's Section 5.3:
///  * cost = implementation-free step counts (real-value subtractions);
///  * queries are randomly chosen database objects, removed from the
///    database for the duration of their query;
///  * reported numbers are "average steps for a single comparison of two
///    shapes, divided by the steps required by brute force" — i.e. the
///    y-axis of Figures 19-23;
///  * brute-force rivals are data-independent, so their counts are computed
///    in closed form (validated against actual runs in the test suite).
///
/// Scale: `ROTIND_BENCH_SCALE=full` reproduces the paper's sizes;
/// the default is a laptop-friendly reduction with the same curve shapes.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/flat_dataset.h"
#include "src/core/random.h"
#include "src/core/series.h"
#include "src/search/engine.h"
#include "src/search/scan.h"

namespace rotind::bench {

inline bool FullScale() {
  const char* env = std::getenv("ROTIND_BENCH_SCALE");
  return env != nullptr && std::strcmp(env, "full") == 0;
}

/// A query drawn from the database: the object is excluded while it is the
/// query (paper Section 5.3).
struct QuerySet {
  std::vector<std::size_t> query_indices;
};

inline QuerySet PickQueries(std::size_t database_size, std::size_t count,
                            std::uint64_t seed) {
  QuerySet qs;
  Rng rng(seed);
  for (std::size_t i = 0; i < count && database_size > 1; ++i) {
    qs.query_indices.push_back(rng.NextBounded(database_size));
  }
  return qs;
}

/// FlatDataset over the first m objects of db (contiguous engine storage).
inline FlatDataset RestrictFlat(const std::vector<Series>& db,
                                std::size_t m) {
  FlatDataset out;
  for (std::size_t i = 0; i < m && i < db.size(); ++i) out.Add(db[i]);
  return out;
}

/// Average steps per object comparison for one rival algorithm across the
/// query set, on the first m objects of db. Runs through the QueryEngine:
/// the database prefix is stored once as a FlatDataset, and a query drawn
/// from the prefix is excluded via the engine's leave-one-out scan instead
/// of copying the database minus one item per query.
inline double AverageStepsPerComparison(const std::vector<Series>& db,
                                        std::size_t m, const QuerySet& queries,
                                        ScanAlgorithm algorithm,
                                        const ScanOptions& options) {
  const FlatDataset flat = RestrictFlat(db, m);
  const QueryEngine engine(flat, EngineOptionsFrom(options, algorithm));
  const std::size_t no_holdout = flat.size();  // skips nothing
  double total = 0.0;
  std::uint64_t comparisons = 0;
  for (std::size_t qi : queries.query_indices) {
    const std::size_t holdout = qi < m ? qi : no_holdout;
    const ScanResult r = engine.SearchLeaveOneOut(db[qi], holdout);
    total += static_cast<double>(r.counter.total_steps());
    comparisons += flat.size() - (holdout < flat.size() ? 1 : 0);
  }
  return comparisons == 0 ? 0.0 : total / static_cast<double>(comparisons);
}

/// Closed-form steps/comparison of the data-independent rivals.
inline double BruteStepsPerComparison(std::size_t n, std::size_t rotations,
                                      DistanceKind kind, int band) {
  return static_cast<double>(
      AnalyticBruteForceSteps(1, n, rotations, kind, band));
}

/// Prints one row of a relative-performance table.
inline void PrintRow(std::size_t m, const std::vector<double>& relative,
                     const std::vector<const char*>& names) {
  std::printf("%8zu", m);
  for (std::size_t i = 0; i < relative.size(); ++i) {
    std::printf("  %12.6f", relative[i]);
  }
  std::printf("\n");
  (void)names;
}

inline void PrintHeader(const char* title,
                        const std::vector<const char*>& names) {
  std::printf("%s\n", title);
  std::printf("%8s", "m");
  for (const char* name : names) std::printf("  %12s", name);
  std::printf("\n");
}

}  // namespace rotind::bench

#endif  // ROTIND_BENCH_BENCH_COMMON_H_
