/// Open-loop load generator for the `rotind serve` stack: a QueryServer
/// over a real file-backed QueryEngine, driven by a Poisson arrival
/// process with zipf-skewed query ids and a mixed 1-NN / k-NN / range
/// workload, run twice — once clean and once with a seeded storage fault
/// schedule (transient read errors, torn pages, latency spikes) and
/// bounded retry enabled.
///
///   serve_load_bench [BENCH_serve.json]
///
/// The JSON records, per phase: request counts by outcome (ok / degraded
/// / shed / deadline_exceeded / cancelled / failed), throughput,
/// end-to-end latency percentiles (p50/p95/p99, queue wait included), and
/// the storage resilience counters (retries, absorbed faults).
///
/// The bench is also the wrong-answer gate CI relies on: every OK
/// response is checked against ground truth precomputed on a clean
/// in-memory engine, and the process exits 1 if any served answer —
/// including under injected faults — is not exact. Degraded k-NN
/// responses are held to the same bar for their REPORTED effective_k:
/// robustness may narrow an answer, never corrupt one.
///
/// SIGINT/SIGTERM mid-load stops the generator, drains the server, and
/// still writes the JSON — exercising the same graceful-shutdown path the
/// CLI server uses.
///
/// Scale: ROTIND_BENCH_SCALE=full for a longer run; the default finishes
/// in seconds.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/datasets/synthetic.h"
#include "src/index/index_io.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/storage/backend.h"

namespace rotind::bench {
namespace {

using Clock = std::chrono::steady_clock;

volatile std::sig_atomic_t g_stop = 0;
void HandleStop(int /*signum*/) { g_stop = 1; }

/// The query-id universe is capped so ground truth stays cheap to
/// precompute; zipf skew concentrates traffic on the low ranks, which
/// keeps the buffer pool hot for popular objects and cold for the tail.
constexpr std::size_t kQueryUniverse = 64;
constexpr int kMaxK = 8;
constexpr double kRangeRadius = 2.5;

struct ZipfSampler {
  std::vector<double> cdf;
  explicit ZipfSampler(std::size_t universe) {
    cdf.reserve(universe);
    double total = 0.0;
    for (std::size_t r = 0; r < universe; ++r) {
      total += 1.0 / static_cast<double>(r + 1);
      cdf.push_back(total);
    }
    for (double& c : cdf) c /= total;
  }
  std::size_t Sample(Rng* rng) const {
    const double u = rng->NextDouble();
    return static_cast<std::size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
  }
};

/// Exact answers from a clean in-memory engine: the reference every
/// served OK response is diffed against. Keyed by query id.
struct GroundTruth {
  std::map<std::size_t, std::vector<Neighbor>> knn;    ///< kMaxK deep.
  std::map<std::size_t, std::vector<Neighbor>> range;  ///< kRangeRadius.
};

GroundTruth ComputeGroundTruth(const FlatDataset& flat,
                               const EngineOptions& options,
                               std::size_t universe) {
  const QueryEngine engine(flat, options);
  GroundTruth truth;
  for (std::size_t id = 0; id < universe && id < flat.size(); ++id) {
    const Series query(flat.data(id), flat.data(id) + flat.length());
    truth.knn[id] = engine.Knn(query, kMaxK);
    truth.range[id] = engine.Range(query, kRangeRadius);
  }
  return truth;
}

bool SameNeighbors(const std::vector<Neighbor>& got,
                   const std::vector<Neighbor>& want) {
  if (got.size() != want.size()) return false;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i].index != want[i].index ||
        got[i].distance != want[i].distance) {
      return false;
    }
  }
  return true;
}

/// One completed (request, response) pair, captured from the worker
/// callback for post-drain verification.
struct Outcome {
  serve::Request request;
  serve::Response response;
};

struct PhaseResult {
  std::string name;
  std::size_t requests = 0;
  double wall_seconds = 0.0;
  serve::ServerStats stats;
  std::uint64_t io_retries = 0;
  std::uint64_t io_faults_absorbed = 0;
  std::uint64_t wrong_answers = 0;
  std::uint64_t verified_ok = 0;
};

/// Checks one OK response against ground truth. A degraded k-NN response
/// is verified against the truth prefix of its reported effective_k.
bool VerifyOutcome(const Outcome& o, const GroundTruth& truth) {
  const std::size_t id = o.request.query_id;
  switch (o.request.op) {
    case serve::RequestOp::kNearest: {
      const auto it = truth.knn.find(id);
      if (it == truth.knn.end() || it->second.empty()) {
        return o.response.neighbors.empty();
      }
      return o.response.neighbors.size() == 1 &&
             o.response.neighbors[0].index == it->second[0].index &&
             o.response.neighbors[0].distance == it->second[0].distance;
    }
    case serve::RequestOp::kKnn: {
      const auto it = truth.knn.find(id);
      if (it == truth.knn.end()) return false;
      const std::size_t k = static_cast<std::size_t>(o.response.effective_k);
      std::vector<Neighbor> want(
          it->second.begin(),
          it->second.begin() +
              static_cast<long>(std::min(k, it->second.size())));
      return SameNeighbors(o.response.neighbors, want);
    }
    case serve::RequestOp::kRange: {
      const auto it = truth.range.find(id);
      if (it == truth.range.end()) return false;
      return SameNeighbors(o.response.neighbors, it->second);
    }
  }
  return false;
}

/// Runs one load phase against a fresh engine + server. The arrival
/// process is open-loop (sleep is scheduled, not response-gated) with a
/// periodic 24-deep burst that overflows the 16-deep queue on purpose:
/// load shedding and degradation are part of what the phase measures.
PhaseResult RunPhase(const std::string& name, const std::string& index_path,
                     const EngineOptions& engine_options,
                     const GroundTruth& truth, std::size_t num_requests,
                     std::uint64_t seed) {
  PhaseResult result;
  result.name = name;

  StatusOr<std::unique_ptr<QueryEngine>> engine =
      QueryEngine::Open(engine_options);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s: cannot open %s: %s\n", name.c_str(),
                 index_path.c_str(), engine.status().ToString().c_str());
    std::exit(1);
  }

  serve::ServerOptions server_options;
  server_options.num_workers = 4;
  server_options.queue_capacity = 16;
  server_options.default_deadline = std::chrono::milliseconds(500);
  server_options.degraded_k = 1;
  serve::QueryServer server(**engine, server_options);
  server.Start();

  std::mutex outcomes_mutex;
  std::vector<Outcome> outcomes;
  outcomes.reserve(num_requests);
  const auto on_done = [&](const serve::Request& request,
                           const serve::Response& response) {
    std::lock_guard<std::mutex> lock(outcomes_mutex);
    outcomes.push_back({request, response});
  };

  Rng rng(seed);
  const ZipfSampler zipf(kQueryUniverse);
  const double mean_gap_us = 1200.0;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < num_requests && g_stop == 0; ++i) {
    serve::Request request;
    request.query_id = zipf.Sample(&rng);
    const double mix = rng.NextDouble();
    if (mix < 0.6) {
      request.op = serve::RequestOp::kNearest;
    } else if (mix < 0.9) {
      request.op = serve::RequestOp::kKnn;
      request.k = 2 + static_cast<int>(rng.NextBounded(kMaxK - 1));
    } else {
      request.op = serve::RequestOp::kRange;
      request.radius = kRangeRadius;
    }
    // A slice of the traffic carries deadlines too tight to meet: the
    // phase must show them failing TYPED, not slow or wrong.
    if (rng.NextDouble() < 0.05) {
      request.deadline = std::chrono::microseconds(1);
    }
    ++result.requests;
    (void)server.Submit(request, on_done);  // Sheds are counted server-side.
    if (i % 50 == 49) {
      for (int b = 0; b < 24 && result.requests < num_requests; ++b) {
        serve::Request burst = request;
        burst.deadline = std::chrono::nanoseconds(0);
        burst.query_id = zipf.Sample(&rng);
        ++result.requests;
        (void)server.Submit(burst, on_done);
      }
    } else {
      const double gap =
          -std::log(1.0 - rng.NextDouble()) * mean_gap_us;
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<std::int64_t>(gap)));
    }
  }
  server.Shutdown();
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  result.stats = server.stats();
  for (const obs::StageStats& stage : result.stats.engine_metrics.stages) {
    result.io_retries += stage.io_retries;
    result.io_faults_absorbed += stage.io_faults_absorbed;
  }

  for (const Outcome& o : outcomes) {
    if (!o.response.status.ok()) continue;
    if (VerifyOutcome(o, truth)) {
      ++result.verified_ok;
    } else {
      ++result.wrong_answers;
      std::fprintf(stderr,
                   "%s: WRONG ANSWER op=%s id=%zu effective_k=%d n=%zu\n",
                   name.c_str(), serve::OpName(o.request.op),
                   o.request.query_id, o.response.effective_k,
                   o.response.neighbors.size());
    }
  }
  return result;
}

void PrintPhase(const PhaseResult& r) {
  const auto& s = r.stats;
  const double qps =
      r.wall_seconds > 0.0
          ? static_cast<double>(s.completed_ok) / r.wall_seconds
          : 0.0;
  std::printf(
      "%-8s  %6zu req  %7.2f qps  p50=%llu p95=%llu p99=%llu us  "
      "ok=%llu degraded=%llu shed=%llu deadline=%llu failed=%llu  "
      "retries=%llu absorbed=%llu  wrong=%llu\n",
      r.name.c_str(), r.requests, qps,
      static_cast<unsigned long long>(
          s.e2e_latency.PercentileNanos(50.0) / 1000),
      static_cast<unsigned long long>(
          s.e2e_latency.PercentileNanos(95.0) / 1000),
      static_cast<unsigned long long>(
          s.e2e_latency.PercentileNanos(99.0) / 1000),
      static_cast<unsigned long long>(s.completed_ok),
      static_cast<unsigned long long>(s.degraded),
      static_cast<unsigned long long>(s.shed),
      static_cast<unsigned long long>(s.deadline_exceeded),
      static_cast<unsigned long long>(s.failed),
      static_cast<unsigned long long>(r.io_retries),
      static_cast<unsigned long long>(r.io_faults_absorbed),
      static_cast<unsigned long long>(r.wrong_answers));
}

void WriteJson(const std::string& out_path, std::size_t m, std::size_t n,
               bool full, const std::vector<PhaseResult>& phases) {
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    std::exit(1);
  }
  std::fprintf(out, "{\n");
  std::fprintf(out,
               "  \"scale\": \"%s\", \"database_m\": %zu, "
               "\"database_n\": %zu,\n",
               full ? "full" : "quick", m, n);
  std::fprintf(out, "  \"phases\": [\n");
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseResult& r = phases[i];
    const auto& s = r.stats;
    const double qps =
        r.wall_seconds > 0.0
            ? static_cast<double>(s.completed_ok) / r.wall_seconds
            : 0.0;
    std::fprintf(
        out,
        "    {\"name\": \"%s\", \"requests\": %zu, \"wall_seconds\": "
        "%.6f,\n"
        "     \"throughput_qps\": %.3f, \"p50_us\": %llu, \"p95_us\": "
        "%llu, \"p99_us\": %llu, \"max_us\": %llu,\n"
        "     \"completed_ok\": %llu, \"degraded\": %llu, \"shed\": %llu, "
        "\"deadline_exceeded\": %llu, \"cancelled\": %llu, \"failed\": "
        "%llu,\n"
        "     \"io_retries\": %llu, \"io_faults_absorbed\": %llu, "
        "\"verified_ok\": %llu, \"wrong_answers\": %llu}%s\n",
        r.name.c_str(), r.requests, r.wall_seconds, qps,
        static_cast<unsigned long long>(
            s.e2e_latency.PercentileNanos(50.0) / 1000),
        static_cast<unsigned long long>(
            s.e2e_latency.PercentileNanos(95.0) / 1000),
        static_cast<unsigned long long>(
            s.e2e_latency.PercentileNanos(99.0) / 1000),
        static_cast<unsigned long long>(s.e2e_latency.max_nanos() / 1000),
        static_cast<unsigned long long>(s.completed_ok),
        static_cast<unsigned long long>(s.degraded),
        static_cast<unsigned long long>(s.shed),
        static_cast<unsigned long long>(s.deadline_exceeded),
        static_cast<unsigned long long>(s.cancelled),
        static_cast<unsigned long long>(s.failed),
        static_cast<unsigned long long>(r.io_retries),
        static_cast<unsigned long long>(r.io_faults_absorbed),
        static_cast<unsigned long long>(r.verified_ok),
        static_cast<unsigned long long>(r.wrong_answers),
        i + 1 < phases.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
}

int Run(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serve.json";
  const bool full = FullScale();
  const std::size_t m = full ? 2000 : 400;
  const std::size_t n = full ? 251 : 128;
  const std::size_t num_requests = full ? 3000 : 400;

  std::signal(SIGINT, HandleStop);
  std::signal(SIGTERM, HandleStop);

  const std::vector<Series> db = MakeProjectilePointsDatabase(m, n, 24);
  const FlatDataset flat = RestrictFlat(db, m);
  Dataset dataset;
  dataset.items = db;
  const std::string index_path = out_path + ".ridx";
  const Status built = BuildIndexFile(dataset, IndexBuildOptions(),
                                      index_path);
  if (!built.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 built.message().c_str());
    return 1;
  }

  EngineOptions engine_options;
  engine_options.storage.backend = storage::BackendKind::kFile;
  engine_options.storage.index_path = index_path;
  engine_options.storage.pool_pages = 32;
  const GroundTruth truth =
      ComputeGroundTruth(flat, EngineOptions(), kQueryUniverse);

  std::printf("serve load bench: m=%zu n=%zu, %zu requests per phase%s\n",
              m, n, num_requests, full ? " (full scale)" : "");
  std::vector<PhaseResult> phases;

  phases.push_back(RunPhase("clean", index_path, engine_options, truth,
                            num_requests, 1001));
  PrintPhase(phases.back());

  EngineOptions faulted = engine_options;
  faulted.storage.retry.max_attempts = 4;
  faulted.storage.faults.seed = 77;
  faulted.storage.faults.transient_read_prob = 0.05;
  faulted.storage.faults.transient_burst = 2;
  faulted.storage.faults.torn_page_prob = 0.01;
  faulted.storage.faults.latency_spike_prob = 0.02;
  faulted.storage.faults.latency_spike = std::chrono::microseconds(500);
  phases.push_back(RunPhase("faulted", index_path, faulted, truth,
                            num_requests, 2002));
  PrintPhase(phases.back());

  std::remove(index_path.c_str());
  WriteJson(out_path, m, n, full, phases);

  std::uint64_t wrong = 0;
  for (const PhaseResult& r : phases) wrong += r.wrong_answers;
  if (wrong > 0) {
    std::fprintf(stderr,
                 "FAIL: %llu wrong answers served (exactness gate)\n",
                 static_cast<unsigned long long>(wrong));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace rotind::bench

int main(int argc, char** argv) { return rotind::bench::Run(argc, argv); }
