/// Micro-benchmarks (google-benchmark) of the hot kernels: Euclidean
/// distance, early abandoning, banded DTW, LB_Keogh, envelopes, FFT, and
/// wedge-tree construction. These measure wall-clock of the
/// implementations themselves, complementing the implementation-free step
/// counts used by the figure benches.

#include <benchmark/benchmark.h>

#include "src/core/random.h"
#include "src/distance/dtw.h"
#include "src/distance/euclidean.h"
#include "src/distance/lcss.h"
#include "src/envelope/wedge_tree.h"
#include "src/fourier/fft.h"
#include "src/fourier/spectral.h"
#include "src/search/lower_bound.h"

namespace rotind {
namespace {

Series MakeSeries(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Series s(n);
  for (double& v : s) v = rng.Gaussian(0.0, 1.0);
  return s;
}

void BM_Euclidean(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Series a = MakeSeries(n, 1);
  const Series b = MakeSeries(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SquaredEuclidean(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(n));
}
BENCHMARK(BM_Euclidean)->Arg(251)->Arg(1024);

void BM_EarlyAbandonEuclideanTightLimit(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Series a = MakeSeries(n, 1);
  const Series b = MakeSeries(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EarlyAbandonEuclidean(a.data(), b.data(), n, 0.5));
  }
}
BENCHMARK(BM_EarlyAbandonEuclideanTightLimit)->Arg(251)->Arg(1024);

void BM_DtwBanded(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const int band = static_cast<int>(state.range(1));
  const Series a = MakeSeries(n, 3);
  const Series b = MakeSeries(n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DtwDistance(a.data(), b.data(), n, band));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(DtwCellCount(n, band)));
}
BENCHMARK(BM_DtwBanded)->Args({251, 5})->Args({1024, 5})->Args({251, 25});

void BM_Lcss(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Series a = MakeSeries(n, 5);
  const Series b = MakeSeries(n, 6);
  LcssOptions opts;
  opts.delta = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LcssLength(a.data(), b.data(), n, opts));
  }
}
BENCHMARK(BM_Lcss)->Arg(251);

void BM_LbKeogh(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Envelope env = Envelope::FromSeries(MakeSeries(n, 7));
  env.MergeSeries(MakeSeries(n, 8).data(), n);
  const Series q = MakeSeries(n, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LbKeogh(q.data(), env));
  }
}
BENCHMARK(BM_LbKeogh)->Arg(251)->Arg(1024);

void BM_EnvelopeDtwExpansion(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Envelope env = Envelope::FromSeries(MakeSeries(n, 10));
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.ExpandedForDtw(5));
  }
}
BENCHMARK(BM_EnvelopeDtwExpansion)->Arg(1024);

void BM_Fft(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Series s = MakeSeries(n, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FftReal(s));
  }
}
// 1024 exercises radix-2; 251 (prime) exercises Bluestein.
BENCHMARK(BM_Fft)->Arg(251)->Arg(1024);

void BM_SpectralSignature(benchmark::State& state) {
  const Series s = MakeSeries(1024, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeSpectralSignature(s, 16));
  }
}
BENCHMARK(BM_SpectralSignature);

void BM_WedgeTreeBuild(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Series q = MakeSeries(n, 13);
  for (auto _ : state) {
    StepCounter counter;
    WedgeTree tree(q, {}, 0, &counter);
    benchmark::DoNotOptimize(tree.root());
  }
}
BENCHMARK(BM_WedgeTreeBuild)->Arg(251)->Arg(512);

}  // namespace
}  // namespace rotind

BENCHMARK_MAIN();
