/// Micro-benchmarks (google-benchmark) of the hot kernels: Euclidean
/// distance, early abandoning, banded DTW, LB_Keogh, envelopes, FFT,
/// wedge-tree construction, and the QueryEngine layers (contiguous
/// rotation views, cascade search, batch fan-out). These measure
/// wall-clock of the implementations themselves, complementing the
/// implementation-free step counts used by the figure benches.
///
/// Machine-readable output: pass --benchmark_out=FILE
/// --benchmark_out_format=json (CI uploads this as an artifact).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "src/core/flat_dataset.h"
#include "src/core/random.h"
#include "src/datasets/synthetic.h"
#include "src/distance/dtw.h"
#include "src/distance/euclidean.h"
#include "src/distance/lcss.h"
#include "src/envelope/wedge_tree.h"
#include "src/fourier/fft.h"
#include "src/fourier/spectral.h"
#include "src/search/engine.h"
#include "src/envelope/lower_bound.h"

namespace rotind {
namespace {

Series MakeSeries(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Series s(n);
  for (double& v : s) v = rng.Gaussian(0.0, 1.0);
  return s;
}

void BM_Euclidean(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Series a = MakeSeries(n, 1);
  const Series b = MakeSeries(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SquaredEuclidean(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(n));
}
BENCHMARK(BM_Euclidean)->Arg(251)->Arg(1024);

void BM_EarlyAbandonEuclideanTightLimit(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Series a = MakeSeries(n, 1);
  const Series b = MakeSeries(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EarlyAbandonEuclidean(a.data(), b.data(), n, 0.5));
  }
}
BENCHMARK(BM_EarlyAbandonEuclideanTightLimit)->Arg(251)->Arg(1024);

void BM_DtwBanded(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const int band = static_cast<int>(state.range(1));
  const Series a = MakeSeries(n, 3);
  const Series b = MakeSeries(n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DtwDistance(a.data(), b.data(), n, band));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(DtwCellCount(n, band)));
}
BENCHMARK(BM_DtwBanded)->Args({251, 5})->Args({1024, 5})->Args({251, 25});

void BM_Lcss(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Series a = MakeSeries(n, 5);
  const Series b = MakeSeries(n, 6);
  LcssOptions opts;
  opts.delta = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LcssLength(a.data(), b.data(), n, opts));
  }
}
BENCHMARK(BM_Lcss)->Arg(251);

void BM_LbKeogh(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Envelope env = Envelope::FromSeries(MakeSeries(n, 7));
  env.MergeSeries(MakeSeries(n, 8).data(), n);
  const Series q = MakeSeries(n, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LbKeogh(q.data(), env));
  }
}
BENCHMARK(BM_LbKeogh)->Arg(251)->Arg(1024);

void BM_EnvelopeDtwExpansion(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Envelope env = Envelope::FromSeries(MakeSeries(n, 10));
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.ExpandedForDtw(5));
  }
}
BENCHMARK(BM_EnvelopeDtwExpansion)->Arg(1024);

void BM_Fft(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Series s = MakeSeries(n, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FftReal(s));
  }
}
// 1024 exercises radix-2; 251 (prime) exercises Bluestein.
BENCHMARK(BM_Fft)->Arg(251)->Arg(1024);

void BM_SpectralSignature(benchmark::State& state) {
  const Series s = MakeSeries(1024, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeSpectralSignature(s, 16));
  }
}
BENCHMARK(BM_SpectralSignature);

void BM_WedgeTreeBuild(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Series q = MakeSeries(n, 13);
  for (auto _ : state) {
    StepCounter counter;
    WedgeTree tree(q, {}, 0, &counter);
    benchmark::DoNotOptimize(tree.root());
  }
}
BENCHMARK(BM_WedgeTreeBuild)->Arg(251)->Arg(512);

// --- QueryEngine layers ---------------------------------------------------

/// All-rotations Euclidean via the doubled buffer: each shift is a pointer
/// offset into contiguous storage, no per-rotation copy.
void BM_RotationScanFlatViews(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  FlatDataset db;
  db.Add(MakeSeries(n, 14));
  const Series q = MakeSeries(n, 15);
  for (auto _ : state) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t shift = 0; shift < n; ++shift) {
      const SeriesView c = db.rotation(0, shift);
      best = std::min(best, SquaredEuclidean(q.data(), c.data(), n));
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_RotationScanFlatViews)->Arg(251)->Arg(1024);

/// The same scan paying for a materialized copy of every rotation — what
/// storing plain std::vector<Series> forces on the hot path.
void BM_RotationScanMaterialized(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Series item = MakeSeries(n, 14);
  const Series q = MakeSeries(n, 15);
  for (auto _ : state) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t shift = 0; shift < n; ++shift) {
      Series rotated(n);
      for (std::size_t j = 0; j < n; ++j) rotated[j] = item[(j + shift) % n];
      best = std::min(best, SquaredEuclidean(q.data(), rotated.data(), n));
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_RotationScanMaterialized)->Arg(251)->Arg(1024);

/// End-to-end 1-NN through the wedge cascade on contiguous storage.
void BM_EngineSearchWedge(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 251;
  const FlatDataset db =
      FlatDataset::FromItems(MakeProjectilePointsDatabase(m, n, 16));
  const QueryEngine engine(db);
  const Series q = db.Materialize(m / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Search(q).best_distance);
  }
}
BENCHMARK(BM_EngineSearchWedge)->Arg(100)->Arg(400);

/// Batch 1-NN over the worker pool; threads is the benchmark argument, so
/// the scaling curve is visible in one report.
void BM_EngineSearchBatch(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const std::size_t m = 200;
  const std::size_t n = 251;
  const FlatDataset db =
      FlatDataset::FromItems(MakeProjectilePointsDatabase(m, n, 17));
  const QueryEngine engine(db);
  std::vector<Series> queries;
  for (std::size_t i = 0; i < 16; ++i) queries.push_back(db.Materialize(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.SearchBatch(queries, threads).size());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(queries.size()));
}
BENCHMARK(BM_EngineSearchBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace rotind

BENCHMARK_MAIN();
