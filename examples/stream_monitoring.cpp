/// Streaming query filtering ("Atomic Wedgie", the paper's reference [40]):
/// monitor a live feed for occurrences of registered patterns, phase-
/// independently, using one hierarchal wedge filter over all patterns and
/// all their rotations.
///
/// Scenario: a telescope produces a continuous brightness stream; we want
/// an alert whenever the last n samples look like a known variable-star
/// signature — at ANY phase, which is exactly the rotation-invariance
/// problem (paper Section 2.4).

#include <cstdio>

#include "src/core/random.h"
#include "src/lightcurve/lightcurve.h"
#include "src/stream/monitor.h"

int main() {
  using namespace rotind;
  const std::size_t n = 96;
  Rng rng(2006);

  // Registered patterns: one clean template per variable-star class.
  const std::vector<Series> patterns = {
      LightCurveTemplate(VariableStarClass::kEclipsingBinary, n),
      LightCurveTemplate(VariableStarClass::kRrLyrae, n),
      LightCurveTemplate(VariableStarClass::kCepheid, n),
  };
  const char* names[] = {"EclipsingBinary", "RRLyrae", "Cepheid"};

  StreamMonitor::Options options;
  options.distance_threshold = 3.0;
  options.rotation_invariant = true;  // any phase
  options.wedges = 6;
  StreamMonitor monitor(patterns, options);

  // Build the stream: noise with three star signatures embedded at
  // arbitrary phases.
  Series stream;
  auto noise = [&](int count) {
    for (int i = 0; i < count; ++i) stream.push_back(rng.Gaussian(0.0, 1.0));
  };
  std::vector<std::pair<std::size_t, int>> truth;  // (end position, class)
  LightCurveOptions gen;
  gen.noise_sigma = 0.05;
  gen.shape_jitter = 0.02;
  noise(150);
  for (int cls = 0; cls < 3; ++cls) {
    const Series obs = GenerateLightCurve(
        static_cast<VariableStarClass>(cls), n, &rng, gen);
    stream.insert(stream.end(), obs.begin(), obs.end());
    truth.emplace_back(stream.size() - 1, cls);
    noise(120);
  }

  StepCounter counter;
  const auto hits = monitor.PushAll(stream, &counter);

  std::printf("stream of %zu samples, %zu raw hits\n\n", stream.size(),
              hits.size());
  // Collapse runs of hits into detections (windows overlap, so a pattern
  // match fires for several consecutive end positions).
  int detections = 0;
  std::int64_t last_end = -1000;
  int matched_truth = 0;
  for (const auto& hit : hits) {
    if (hit.end_position - last_end < static_cast<std::int64_t>(n) / 2) {
      last_end = hit.end_position;
      continue;
    }
    last_end = hit.end_position;
    ++detections;
    std::printf("detection @%6lld  pattern=%-16s phase-shift=%3d  d=%.3f\n",
                static_cast<long long>(hit.end_position),
                names[hit.pattern], hit.shift, hit.distance);
    for (const auto& [pos, cls] : truth) {
      if (hit.end_position >= static_cast<std::int64_t>(pos) - 4 &&
          hit.end_position <= static_cast<std::int64_t>(pos) + 4 &&
          hit.pattern == cls) {
        ++matched_truth;
      }
    }
  }

  const double steps_per_sample =
      static_cast<double>(counter.steps) /
      static_cast<double>(stream.size());
  std::printf("\n%d detections, %d aligned with embedded signatures\n",
              detections, matched_truth);
  std::printf("filter cost: %.1f steps/sample (brute force would be %zu)\n",
              steps_per_sample, 3 * n * n);
  return matched_truth >= 3 ? 0 : 1;
}
