/// Clustering "sanity checks" in the spirit of the paper's Figures 3, 16,
/// 17 and 18:
///
///   [A] Landmark (fixed-orientation) vs best-rotation clustering of
///       skull-like profiles (Figure 3): the landmark dendrogram scrambles
///       the two members of the same "genus", the rotation-invariant one
///       recovers them.
///   [B] A group-average dendrogram of "primate skulls" under
///       rotation-invariant Euclidean distance (Figure 16).
///   [C] The articulation experiment (Figure 18): three butterflies plus
///       copies with a "bent hindwing" — the centroid profile barely
///       changes and each copy clusters with its original.

#include <cmath>
#include <cstdio>
#include <string>

#include "src/cluster/linkage.h"
#include "src/core/random.h"
#include "src/distance/euclidean.h"
#include "src/distance/rotation.h"
#include "src/shape/generate.h"

namespace {

using namespace rotind;

Dendrogram Cluster(const std::vector<Series>& items, bool rotation_invariant) {
  return AgglomerativeCluster(
      static_cast<int>(items.size()),
      [&](int i, int j) {
        const Series& a = items[static_cast<std::size_t>(i)];
        const Series& b = items[static_cast<std::size_t>(j)];
        return rotation_invariant ? RotationInvariantEuclidean(a, b)
                                  : EuclideanDistance(a, b);
      },
      Linkage::kAverage);
}

}  // namespace

int main() {
  const std::size_t n = 180;
  Rng rng(16);

  // ---------------------------------------------------------------- [A/B]
  // Six "skulls": two owl monkeys (same genus: similar jaw/cranium), two
  // orangutans, a human and a howler monkey — each digitised at a random
  // orientation (random circular shift).
  std::vector<std::string> names = {"OwlMonkey-A", "OwlMonkey-B",
                                    "Orangutan-A", "Orangutan-B",
                                    "Human",       "HowlerMonkey"};
  std::vector<Series> skulls;
  auto digitise = [&](const RadialShapeSpec& spec) {
    Series s = ZNormalized(RadialProfile(spec, n));
    return RotateLeft(s, static_cast<long>(rng.NextBounded(n)));
  };
  // Two specimens per genus = two jittered copies of one genus template.
  const RadialShapeSpec owl = SkullSpec(&rng, 0.16, 0.22);
  const RadialShapeSpec orang = SkullSpec(&rng, 0.30, 0.38);
  skulls.push_back(digitise(PerturbSpec(owl, &rng, 0.01, 0.02)));
  skulls.push_back(digitise(PerturbSpec(owl, &rng, 0.01, 0.02)));
  skulls.push_back(digitise(PerturbSpec(orang, &rng, 0.01, 0.02)));
  skulls.push_back(digitise(PerturbSpec(orang, &rng, 0.01, 0.02)));
  skulls.push_back(digitise(SkullSpec(&rng, 0.10, 0.48)));
  skulls.push_back(digitise(SkullSpec(&rng, 0.24, 0.15)));

  std::printf("[A] Landmark alignment (no rotation invariance):\n%s\n",
              Cluster(skulls, false).ToText(names).c_str());
  std::printf("[B] Best-rotation alignment (paper Figure 16):\n%s\n",
              Cluster(skulls, true).ToText(names).c_str());

  // ----------------------------------------------------------------- [C]
  // Articulation: three Lepidoptera and copies with a tweaked hindwing
  // (localised bump on the profile), paper Figure 18.
  std::vector<std::string> moth_names = {
      "Actias-maenas",  "Actias-philippinica",  "Chorinea-amazon",
      "Actias-maenas*", "Actias-philippinica*", "Chorinea-amazon*"};
  std::vector<Series> moths;
  std::vector<RadialShapeSpec> specs = {ButterflySpec(&rng, 0.05),
                                        ButterflySpec(&rng, 0.12),
                                        ButterflySpec(&rng, 0.20)};
  specs[1].amplitudes[3] = 0.24;  // smaller wing lobes
  specs[2].amplitudes[1] = 0.34;  // a visibly different third species
  for (const RadialShapeSpec& spec : specs) {
    moths.push_back(ZNormalized(RadialProfile(spec, n)));
  }
  for (const RadialShapeSpec& spec : specs) {
    Series bent = RadialProfile(spec, n);
    // "Bend the right hindwing": a smooth local distortion over ~12% of
    // the boundary.
    for (std::size_t i = 0; i < n / 8; ++i) {
      const double w =
          std::sin(3.14159265 * static_cast<double>(i) / (n / 8.0));
      bent[n / 2 + i] += 0.06 * w;
    }
    Series z = ZNormalized(bent);
    moths.push_back(RotateLeft(z, static_cast<long>(rng.NextBounded(n))));
  }
  std::printf("[C] Articulation robustness (paper Figure 18):\n%s\n",
              Cluster(moths, true).ToText(moth_names).c_str());

  // Verdict for [C]: every starred copy's nearest neighbour must be its
  // original.
  bool ok = true;
  for (int i = 0; i < 3; ++i) {
    double best = 1e300;
    int arg = -1;
    for (int j = 0; j < 6; ++j) {
      if (j == i + 3) continue;
      const double d = RotationInvariantEuclidean(
          moths[static_cast<std::size_t>(i + 3)],
          moths[static_cast<std::size_t>(j)]);
      if (d < best) {
        best = d;
        arg = j;
      }
    }
    std::printf("nearest neighbour of %-22s = %s\n",
                moth_names[static_cast<std::size_t>(i + 3)].c_str(),
                moth_names[static_cast<std::size_t>(arg)].c_str());
    ok = ok && (arg == i);
  }
  return ok ? 0 : 1;
}
