/// Rotation-limited and mirror-image queries (paper Section 3):
///
///   * "Find the best match allowing a maximum rotation of 15 degrees" —
///     how a "6" is retrieved without also retrieving "9"s (which are just
///     rotated "6"s).
///   * Mirror-image invariance — how a "d" matches a "b" only when
///     enantiomorphic matching is requested.
///
/// Everything runs through the same exact wedge search; the invariance is
/// purely a property of the candidate rotation set.

#include <cstdio>
#include <string>

#include "src/core/random.h"
#include "src/search/scan.h"
#include "src/shape/generate.h"

int main() {
  using namespace rotind;
  const std::size_t n = 120;
  Rng rng(42);

  // A tiny database: upright "6"s with small tilts, upside-down "6"s
  // (i.e. "9"s), and unrelated blobs.
  const Series six = ZNormalized(RadialProfile(DigitSixSpec(), n));
  std::vector<Series> db;
  std::vector<std::string> labels;
  for (int tilt : {-8, 5, 9}) {  // degrees
    db.push_back(RotateLeft(six, tilt * static_cast<long>(n) / 360));
    labels.push_back("six (tilt " + std::to_string(tilt) + " deg)");
  }
  for (int tilt : {176, 183}) {
    db.push_back(RotateLeft(six, tilt * static_cast<long>(n) / 360));
    labels.push_back("nine (tilt " + std::to_string(tilt - 180) + " deg)");
  }
  for (int i = 0; i < 3; ++i) {
    db.push_back(ZNormalized(RadialProfile(RandomShapeSpec(&rng, 7), n)));
    labels.push_back("blob " + std::to_string(i));
  }

  const Series query = six;

  std::printf("query: an upright '6'\n\n");
  {
    ScanOptions unlimited;
    const auto knn = KnnSearchDatabase(db, query, 5, ScanAlgorithm::kWedge,
                                       unlimited);
    std::printf("unrestricted rotation invariance (sixes and nines tie):\n");
    for (const Neighbor& nb : knn) {
      std::printf("  %-22s d=%.4f\n",
                  labels[static_cast<std::size_t>(nb.index)].c_str(),
                  nb.distance);
    }
  }
  int sixes_in_top3 = 0;
  {
    ScanOptions limited;
    limited.rotation.max_shift = static_cast<int>(n) * 15 / 360;  // 15 deg
    const auto knn =
        KnnSearchDatabase(db, query, 3, ScanAlgorithm::kWedge, limited);
    std::printf("\nrotation-limited to +/-15 degrees (only sixes remain "
                "close):\n");
    for (const Neighbor& nb : knn) {
      std::printf("  %-22s d=%.4f\n",
                  labels[static_cast<std::size_t>(nb.index)].c_str(),
                  nb.distance);
      if (labels[static_cast<std::size_t>(nb.index)].rfind("six", 0) == 0 &&
          nb.distance < 0.5) {
        ++sixes_in_top3;
      }
    }
  }

  // Mirror: a chiral butterfly ("d") and its reversal ("b").
  const Series d_shape =
      ZNormalized(RadialProfile(ButterflySpec(&rng, 0.2), n));
  const Series b_shape = Reversed(d_shape);
  std::vector<Series> letters = {b_shape};
  ScanOptions plain;
  ScanOptions mirror;
  mirror.rotation.mirror = true;
  const double without =
      SearchDatabase(letters, d_shape, ScanAlgorithm::kWedge, plain)
          .best_distance;
  const double with =
      SearchDatabase(letters, d_shape, ScanAlgorithm::kWedge, mirror)
          .best_distance;
  std::printf("\n'd' vs 'b': distance %.4f without mirror invariance, "
              "%.4f with it\n",
              without, with);

  const bool ok = sixes_in_top3 == 3 && with < 1e-6 && without > 0.1;
  return ok ? 0 : 1;
}
