/// Star light curve indexing (paper Section 2.4): folded periods of
/// periodic variable stars have no natural starting point, so finding
/// similar stars means comparing every circular shift — the same problem
/// as rotation-invariant shape matching, solved by the same index.
///
/// This example builds a disk-backed index over a synthetic survey,
/// queries it with new observations, and reports class hits plus how
/// little of the "disk" was touched.

#include <cstdio>

#include "src/core/random.h"
#include "src/index/candidate_scan.h"
#include "src/lightcurve/lightcurve.h"

int main() {
  using namespace rotind;
  const std::size_t n = 256;
  const std::size_t per_class = 200;

  // A labelled "survey": 600 stars of three variability classes, each
  // folded at a random phase.
  LightCurveOptions gen;
  gen.noise_sigma = 0.03;
  gen.shape_jitter = 0.03;
  const Dataset survey =
      MakeLightCurveDataset(per_class, n, /*seed=*/2006, gen);

  RotationInvariantIndex::Options options;
  options.dims = 16;  // FFT-magnitude signature dimensionality
  options.kind = DistanceKind::kEuclidean;
  RotationInvariantIndex index(survey.items, options);

  std::printf("indexed %zu light curves (n=%zu, D=%zu)\n\n", index.size(), n,
              options.dims);
  std::printf("%-18s %-18s %10s %14s\n", "query class", "matched class",
              "distance", "disk fraction");

  Rng rng(99);
  const VariableStarClass classes[] = {VariableStarClass::kEclipsingBinary,
                                       VariableStarClass::kRrLyrae,
                                       VariableStarClass::kCepheid};
  int correct = 0;
  const int num_queries = 9;
  for (int q = 0; q < num_queries; ++q) {
    const VariableStarClass cls = classes[q % 3];
    const Series query = GenerateLightCurve(cls, n, &rng, gen);
    const auto result = index.NearestNeighbor(query);
    const int matched_label =
        survey.labels[static_cast<std::size_t>(result.best_index)];
    std::printf("%-18s %-18s %10.4f %13.1f%%\n", ToString(cls).c_str(),
                survey.names[static_cast<std::size_t>(result.best_index)]
                    .substr(0, 15)
                    .c_str(),
                result.best_distance, 100.0 * result.fetch_fraction);
    if (matched_label == q % 3) ++correct;
  }
  std::printf("\n%d / %d queries matched a star of their own class\n",
              correct, num_queries);
  return correct >= 8 ? 0 : 1;
}
