/// Quickstart: rotation-invariant shape search in five steps.
///
///   1. Make (or load) shapes as bitmaps.
///   2. Convert them to centroid-distance time series (paper Figure 2).
///   3. Put the series in a contiguous FlatDataset and build a QueryEngine
///      over it.
///   4. Ask for the nearest neighbour of a rotated query with the wedge
///      cascade — exact, orders of magnitude faster than brute force.
///   5. Read back which object won, at which rotation, and at what cost.

#include <cstdio>

#include "src/core/flat_dataset.h"
#include "src/core/random.h"
#include "src/datasets/synthetic.h"
#include "src/search/engine.h"
#include "src/shape/generate.h"
#include "src/shape/profile.h"

int main() {
  using namespace rotind;
  const std::size_t n = 128;  // time-series length per shape

  // 1-2. Ten random shapes, rasterised and converted to series. (Real
  // applications would call ShapeToSeries on scanned images; the generator
  // stands in for a scanner here.)
  Rng rng(7);
  FlatDataset database;
  for (int i = 0; i < 10; ++i) {
    const RadialShapeSpec spec = RandomShapeSpec(&rng, 7);
    const Bitmap image = Bitmap::FromPolygon(RadialPolygon(spec, 360), 128);
    database.Add(ShapeToSeries(image, n));
  }

  // 3. The query: object #4, rotated by 100 degrees (as a bitmap!).
  const RadialShapeSpec spec = RandomShapeSpec(&rng, 7);
  Rng replay(7);
  Bitmap query_image(1, 1);
  for (int i = 0; i <= 4; ++i) {
    const RadialShapeSpec s = RandomShapeSpec(&replay, 7);
    if (i == 4) {
      query_image = Bitmap::FromPolygon(RadialPolygon(s, 360), 128)
                        .Rotated(100.0 * 3.14159265 / 180.0);
    }
  }
  const Series query = ShapeToSeries(query_image, n);

  // 4. Exact rotation-invariant 1-NN through the QueryEngine's wedge
  // cascade. EngineOptions single-source the measure (set options.kind for
  // DTW) and the pruning pipeline; batches of queries can run over a worker
  // pool with engine.SearchBatch(queries, num_threads).
  EngineOptions options;  // Euclidean, cascade = {kWedge} by default
  const QueryEngine engine(database, options);
  const ScanResult hit = engine.Search(query);

  // 5. Results.
  std::printf("best match: object %d\n", hit.best_index);
  std::printf("distance:   %.4f\n", hit.best_distance);
  std::printf("alignment:  shift %d of %zu (%.0f degrees)%s\n",
              hit.best_shift, n, 360.0 * hit.best_shift / n,
              hit.best_mirrored ? ", mirrored" : "");
  std::printf("work:       %llu steps (brute force: %llu)\n",
              static_cast<unsigned long long>(hit.counter.total_steps()),
              static_cast<unsigned long long>(
                  AnalyticBruteForceSteps(database.size(), n, n,
                                          DistanceKind::kEuclidean, 0)));
  return hit.best_index == 4 ? 0 : 1;
}
